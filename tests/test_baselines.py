"""Unit tests for the baseline protection techniques."""

import numpy as np
import pytest

from repro.baselines import (
    ABFTConvChecksum,
    ComparisonConfig,
    LogisticClassifier,
    ModularRedundancy,
    SelectiveDuplication,
    SymptomDetector,
    TechniqueComparison,
    prepare_activation_variant,
    prepare_tanh_variant,
    train_ml_corrector,
)
from repro.core import ActivationProfiler, Ranger, RestrictionBounds
from repro.injection import FaultInjector, SingleBitFlip, TopKMisclassification


@pytest.fixture(scope="module")
def lenet_injector(lenet_prepared):
    injector = FaultInjector(lenet_prepared.model, SingleBitFlip(), seed=0)
    injector.profile_state_space(lenet_prepared.dataset.x_val[:1])
    return injector


class TestModularRedundancy:
    def test_tmr_recovers_golden_output(self, lenet_prepared, lenet_injector):
        model = lenet_prepared.model
        x, _ = lenet_prepared.correctly_predicted_inputs(1, seed=0)
        golden = model.predict(x)
        tmr = ModularRedundancy(model, replicas=3)
        voted, faults = tmr.predict_under_fault(lenet_injector, x)
        assert len(faults) == 1
        np.testing.assert_allclose(voted, golden, atol=1e-9)

    def test_overhead_and_coverage_claims(self, lenet_prepared):
        tmr = ModularRedundancy(lenet_prepared.model, replicas=3)
        assert tmr.overhead_fraction() == 2.0
        assert tmr.coverage_is_exact()
        dmr = ModularRedundancy(lenet_prepared.model, replicas=2)
        assert not dmr.coverage_is_exact()

    def test_requires_two_replicas(self, lenet_prepared):
        with pytest.raises(ValueError):
            ModularRedundancy(lenet_prepared.model, replicas=1)


class TestSelectiveDuplication:
    def test_selects_fraction_of_state_space(self, lenet_prepared,
                                             lenet_injector):
        dup = SelectiveDuplication(lenet_prepared.model,
                                   duplication_fraction=0.3)
        protected = dup.select_protected_nodes(lenet_injector._site_sizes)
        assert protected
        covered = sum(lenet_injector._site_sizes[n] for n in protected)
        total = sum(lenet_injector._site_sizes.values())
        assert covered <= 0.75 * total  # respects (approximately) the budget

    def test_detects_only_faults_in_protected_nodes(self, lenet_prepared,
                                                    lenet_injector):
        from repro.injection.fault_models import FaultSpec
        dup = SelectiveDuplication(lenet_prepared.model,
                                   duplication_fraction=0.3)
        protected = dup.select_protected_nodes(lenet_injector._site_sizes)
        inside = FaultSpec(next(iter(protected)), 0, 1, 0.0, 1.0)
        outside_name = next(n for n in lenet_injector._site_sizes
                            if n not in protected)
        outside = FaultSpec(outside_name, 0, 1, 0.0, 1.0)
        assert dup.detects([inside])
        assert not dup.detects([outside])

    def test_overhead_tracks_duplicated_flops(self, lenet_prepared,
                                              lenet_injector):
        dup = SelectiveDuplication(lenet_prepared.model,
                                   duplication_fraction=0.3)
        dup.select_protected_nodes(lenet_injector._site_sizes)
        assert 0.0 < dup.overhead_fraction() <= 1.0

    def test_invalid_fraction(self, lenet_prepared):
        with pytest.raises(ValueError):
            SelectiveDuplication(lenet_prepared.model, duplication_fraction=0.0)

    def test_requires_selection_before_use(self, lenet_prepared):
        dup = SelectiveDuplication(lenet_prepared.model)
        with pytest.raises(RuntimeError):
            dup.detects([])


class TestSymptomDetector:
    @pytest.fixture(scope="class")
    def bounds(self, lenet_prepared):
        profiler = ActivationProfiler(lenet_prepared.model)
        sample, _ = lenet_prepared.dataset.sample_train(40, seed=0)
        return profiler.profile(sample).select_bounds(100.0)

    def test_detects_out_of_range_activation(self, lenet_prepared, bounds,
                                             lenet_injector):
        detector = SymptomDetector(bounds=bounds)

        class HugeFault(SingleBitFlip):
            def corrupt(self, value, rng):
                return 1e8, 30

        injector = FaultInjector(lenet_prepared.model, HugeFault(), seed=0)
        injector._site_sizes = dict(lenet_injector._site_sizes)
        x, _ = lenet_prepared.correctly_predicted_inputs(1, seed=0)
        result, _ = injector.inject_full(lenet_prepared.model.executor(), x)
        assert detector.detects(result)

    def test_clean_run_not_flagged_with_max_bounds(self, lenet_prepared,
                                                   bounds):
        detector = SymptomDetector(bounds=bounds, margin=1.05)
        fp = detector.false_positive_rate(lenet_prepared.model,
                                          lenet_prepared.dataset.x_train[:20])
        assert fp <= 0.25

    def test_overhead_includes_reexecution(self, lenet_prepared, bounds):
        detector = SymptomDetector(bounds=bounds)
        cheap = detector.overhead_fraction(lenet_prepared.model,
                                           detection_rate=0.0)
        expensive = detector.overhead_fraction(lenet_prepared.model,
                                               detection_rate=0.5)
        assert expensive > cheap + 0.4


class TestABFT:
    def test_checksum_detects_conv_corruption(self, lenet_prepared,
                                              lenet_injector):
        abft = ABFTConvChecksum(lenet_prepared.model)
        assert abft.protected_nodes

        class ConvFault(SingleBitFlip):
            def corrupt(self, value, rng):
                return value + 1000.0, None

        injector = FaultInjector(lenet_prepared.model, ConvFault(), seed=0)
        injector._site_sizes = {n: s for n, s in lenet_injector._site_sizes.items()
                                if n in abft.protected_nodes}
        x, _ = lenet_prepared.correctly_predicted_inputs(1, seed=0)
        result, faults = injector.inject_full(lenet_prepared.model.executor(), x)
        assert abft.detects(result, faults)

    def test_clean_run_passes_checksum(self, lenet_prepared):
        abft = ABFTConvChecksum(lenet_prepared.model)
        x, _ = lenet_prepared.correctly_predicted_inputs(1, seed=0)
        result = lenet_prepared.model.executor().run(
            {lenet_prepared.model.input_name: x},
            outputs=[lenet_prepared.model.output_name])
        assert not abft.detects(result)

    def test_misses_faults_outside_conv(self, lenet_prepared, lenet_injector):
        abft = ABFTConvChecksum(lenet_prepared.model)

        class FcFault(SingleBitFlip):
            def corrupt(self, value, rng):
                return value + 1000.0, None

        injector = FaultInjector(lenet_prepared.model, FcFault(), seed=0)
        injector._site_sizes = {n: s for n, s in lenet_injector._site_sizes.items()
                                if n.startswith("fc1")}
        x, _ = lenet_prepared.correctly_predicted_inputs(1, seed=0)
        result, faults = injector.inject_full(lenet_prepared.model.executor(), x)
        assert not abft.detects(result, faults)

    def test_overhead_and_coverage_bound(self, lenet_prepared, lenet_injector):
        abft = ABFTConvChecksum(lenet_prepared.model)
        assert 0.0 < abft.overhead_fraction() < 0.5
        bound = abft.coverage_upper_bound(lenet_injector._site_sizes)
        assert 0.0 < bound < 1.0


class TestMLCorrector:
    def test_logistic_classifier_learns_separable_data(self, rng):
        x = np.vstack([rng.normal(-2, 0.5, size=(50, 3)),
                       rng.normal(2, 0.5, size=(50, 3))])
        y = np.array([0] * 50 + [1] * 50)
        clf = LogisticClassifier(epochs=300, seed=0)
        clf.fit(x, y)
        assert (clf.predict(x) == y).mean() > 0.95

    def test_train_corrector_requires_both_classes(self, lenet_prepared):
        x, _ = lenet_prepared.correctly_predicted_inputs(1, seed=0)
        result = lenet_prepared.model.executor().run(
            {lenet_prepared.model.input_name: x},
            outputs=[lenet_prepared.model.output_name])
        with pytest.raises(ValueError):
            train_ml_corrector(lenet_prepared.model, [(result, False)])

    def test_corrector_flags_large_corruptions(self, lenet_prepared,
                                               lenet_injector):
        model = lenet_prepared.model
        x, _ = lenet_prepared.correctly_predicted_inputs(2, seed=0)

        clean = model.executor().run({model.input_name: x[:1]},
                                     outputs=[model.output_name])

        class HugeFault(SingleBitFlip):
            def corrupt(self, value, rng):
                return 1e7, 30

        injector = FaultInjector(model, HugeFault(), seed=0)
        injector._site_sizes = dict(lenet_injector._site_sizes)
        corrupted_runs = []
        for _ in range(6):
            result, _ = injector.inject_full(model.executor(), x[:1])
            corrupted_runs.append((result, True))
        corrector = train_ml_corrector(model,
                                       [(clean, False)] * 6 + corrupted_runs,
                                       seed=0)
        fresh, _ = injector.inject_full(model.executor(), x[1:2])
        assert corrector.detects(fresh)
        assert corrector.overhead_fraction() < 0.05


class TestHongVariant:
    def test_tanh_variant_uses_tanh(self):
        prepared = prepare_tanh_variant("lenet", epochs=1, seed=11)
        assert prepared.model.activation == "tanh"

    def test_activation_variant_builder(self):
        prepared = prepare_activation_variant("lenet", "relu", epochs=1,
                                              seed=12)
        assert prepared.model.activation == "relu"


class TestTechniqueComparison:
    def test_comparison_produces_all_rows(self, lenet_prepared):
        inputs, _ = lenet_prepared.correctly_predicted_inputs(3, seed=0)
        config = ComparisonConfig(trials=25, ml_training_trials=25, seed=0)
        comparison = TechniqueComparison(lenet_prepared, inputs, config=config)
        results = comparison.run()
        names = {r.technique for r in results}
        assert {"tmr", "selective_duplication", "symptom_detector",
                "abft_conv", "ml_corrector", "ranger"} <= names
        for result in results:
            assert 0.0 <= result.sdc_coverage <= 1.0
            assert result.overhead >= 0.0

    def test_ranger_beats_partial_techniques(self, lenet_prepared):
        inputs, _ = lenet_prepared.correctly_predicted_inputs(3, seed=0)
        config = ComparisonConfig(trials=40, ml_training_trials=30, seed=1)
        comparison = TechniqueComparison(lenet_prepared, inputs, config=config)
        results = {r.technique: r for r in comparison.run()}
        # Ranger's coverage should at least match selective duplication's
        # while costing far less than TMR.
        assert results["ranger"].sdc_coverage >= \
            results["selective_duplication"].sdc_coverage - 0.15
        assert results["ranger"].overhead < 0.1
        assert results["tmr"].overhead == pytest.approx(2.0)
