"""Unit tests for the model zoo."""

import numpy as np
import pytest

from repro.models import (
    ALL_MODELS,
    CLASSIFIER_MODELS,
    STEERING_MODELS,
    build_comma,
    build_dave,
    build_lenet,
    build_model,
    build_resnet18,
    build_squeezenet,
    build_vgg11,
    build_vgg16,
    dataset_for_model,
    prepare_model,
)


class TestRegistry:
    def test_model_lists_match_paper_table1(self):
        assert len(CLASSIFIER_MODELS) == 6
        assert len(STEERING_MODELS) == 2
        assert set(ALL_MODELS) == {"lenet", "alexnet", "vgg11", "vgg16",
                                   "resnet18", "squeezenet", "dave", "comma"}

    def test_unknown_model(self):
        with pytest.raises(ValueError):
            build_model("mobilenet")

    def test_unknown_preset(self):
        with pytest.raises(ValueError):
            build_model("lenet", preset="huge")

    def test_overrides_applied(self):
        model = build_model("lenet", num_classes=7)
        assert model.config["num_classes"] == 7

    @pytest.mark.parametrize("name", ALL_MODELS)
    def test_every_model_builds_and_runs(self, name, rng):
        model = build_model(name)
        x = rng.random((2,) + tuple(model.config["input_shape"]))
        out = model.predict(x)
        assert out.shape[0] == 2
        assert np.all(np.isfinite(out))

    @pytest.mark.parametrize("name", CLASSIFIER_MODELS)
    def test_classifier_outputs_are_probabilities(self, name, rng):
        model = build_model(name)
        x = rng.random((1,) + tuple(model.config["input_shape"]))
        out = model.predict(x)
        assert out.shape[1] == model.config["num_classes"]
        np.testing.assert_allclose(out.sum(axis=1), 1.0, atol=1e-9)

    @pytest.mark.parametrize("name", STEERING_MODELS)
    def test_steering_outputs_scalar(self, name, rng):
        model = build_model(name)
        x = rng.random((3,) + tuple(model.config["input_shape"]))
        assert model.predict(x).shape == (3, 1)


class TestArchitectureStructure:
    def test_lenet_layer_counts(self):
        model = build_lenet()
        convs = [n for n in model.graph if type(n.op).__name__ == "Conv2D"]
        matmuls = [n for n in model.graph if type(n.op).__name__ == "MatMul"]
        assert len(convs) == 2 and len(matmuls) == 3

    def test_vgg11_has_8_convs(self):
        model = build_vgg11()
        convs = [n for n in model.graph if type(n.op).__name__ == "Conv2D"]
        assert len(convs) == 8

    def test_vgg16_has_13_convs_and_13_relus_before_fc(self):
        model = build_vgg16()
        convs = [n for n in model.graph if type(n.op).__name__ == "Conv2D"]
        assert len(convs) == 13
        # The paper's Fig. 4 mentions 13 ACT layers in VGG16's conv stack.
        relus = [n for n in model.graph if n.category == "activation"
                 and n.name.startswith("block")]
        assert len(relus) == 13

    def test_resnet18_has_residual_adds(self):
        model = build_resnet18()
        adds = [n for n in model.graph if type(n.op).__name__ == "Add"]
        assert len(adds) == 8  # two blocks per stage, four stages

    def test_squeezenet_has_concatenations(self):
        model = build_squeezenet()
        concats = [n for n in model.graph if n.category == "concat"]
        assert len(concats) == 6  # one per fire module

    def test_dave_radians_uses_atan_head(self):
        model = build_dave(output_mode="radians")
        assert model.angle_unit == "radians"
        assert any(type(n.op).__name__ == "Atan" for n in model.graph)

    def test_dave_degrees_has_no_atan_head(self):
        model = build_dave(output_mode="degrees")
        assert model.angle_unit == "degrees"
        assert not any(type(n.op).__name__ == "Atan" for n in model.graph)

    def test_dave_invalid_output_mode(self):
        with pytest.raises(ValueError):
            build_dave(output_mode="rpm")

    def test_comma_uses_elu(self):
        model = build_comma()
        assert model.activation == "elu"
        assert any(type(n.op).__name__ == "ELU" for n in model.graph)

    def test_activation_override(self):
        model = build_lenet(activation="tanh")
        assert all(type(n.op).__name__ != "ReLU" for n in model.graph)
        assert any(type(n.op).__name__ == "Tanh" for n in model.graph)

    def test_width_scale_shrinks_parameters(self):
        wide = build_lenet(width_scale=1.0)
        narrow = build_lenet(width_scale=0.5)
        assert narrow.num_parameters < wide.num_parameters

    def test_paper_preset_builds(self):
        # The full-size presets must at least build (not run — too slow).
        model = build_model("lenet", preset="paper")
        assert model.config["input_shape"] == (28, 28, 1)


class TestPreparedModels:
    def test_dataset_for_model_matches_input_shape(self):
        model = build_model("alexnet")
        dataset = dataset_for_model(model)
        assert dataset.input_shape == tuple(model.config["input_shape"])

    def test_prepare_without_training(self):
        prepared = prepare_model("lenet", train=False, use_cache=False)
        assert prepared.final_loss is None

    def test_prepare_caches(self):
        a = prepare_model("lenet", train=False, seed=99)
        b = prepare_model("lenet", train=False, seed=99)
        assert a is b

    def test_correct_inputs_are_correct(self, lenet_prepared):
        inputs, labels = lenet_prepared.correctly_predicted_inputs(5, seed=0)
        predictions = lenet_prepared.model.predict(inputs).argmax(1)
        np.testing.assert_array_equal(predictions, labels)

    def test_trained_lenet_beats_chance(self, lenet_prepared):
        ds = lenet_prepared.dataset
        accuracy = (lenet_prepared.model.predict(ds.x_val).argmax(1)
                    == ds.y_val).mean()
        assert accuracy > 0.5

    def test_trained_comma_predicts_reasonably(self, comma_prepared):
        ds = comma_prepared.dataset
        predictions = comma_prepared.model.predict(ds.x_val).reshape(-1)
        rmse = np.sqrt(np.mean((predictions - ds.y_val.reshape(-1)) ** 2))
        assert rmse < 60.0  # degrees; far better than predicting 0 everywhere

    def test_regression_correct_inputs(self, comma_prepared):
        inputs, targets = comma_prepared.correctly_predicted_inputs(4, seed=0)
        assert len(inputs) == 4 and len(targets) == 4


class TestModelWrapper:
    def test_with_graph_keeps_node_names(self, untrained_lenet):
        model = untrained_lenet.model
        copy = model.with_graph(model.graph.duplicate(), suffix="copy")
        assert copy.input_name == model.input_name
        assert copy.logits_name == model.logits_name
        assert copy.name.endswith("_copy")

    def test_predict_logits_differs_from_probabilities(self, untrained_lenet,
                                                       rng):
        model = untrained_lenet.model
        x = rng.random((1,) + tuple(model.config["input_shape"]))
        logits = model.predict_logits(x)
        probs = model.predict(x)
        assert not np.allclose(logits, probs)
