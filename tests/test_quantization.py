"""Unit and property tests for the fixed-point datatypes and bit flips."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.quantization import (
    FIXED16,
    FIXED32,
    FixedPointFormat,
    FixedPointPolicy,
    fixed16_policy,
    fixed32_policy,
    flip_float32_bit,
)


class TestFixedPointFormat:
    def test_paper_configurations(self):
        assert FIXED32.total_bits == 32
        assert FIXED16.total_bits == 16
        assert FIXED16.integer_bits == 14 and FIXED16.fraction_bits == 2

    def test_resolution(self):
        assert FIXED16.resolution == 0.25
        assert FixedPointFormat(8, 8).resolution == pytest.approx(1 / 256)

    def test_range(self):
        fmt = FixedPointFormat(4, 2)  # 6-bit total
        assert fmt.max_value == pytest.approx((2 ** 5 - 1) * 0.25)
        assert fmt.min_value == pytest.approx(-(2 ** 5) * 0.25)

    def test_quantize_rounds_to_grid(self):
        fmt = FixedPointFormat(8, 2)
        assert fmt.quantize(np.array(1.1))[()] == pytest.approx(1.0)
        assert fmt.quantize(np.array(1.13))[()] == pytest.approx(1.25)

    def test_saturation(self):
        fmt = FixedPointFormat(4, 0)
        assert fmt.quantize(np.array(1000.0))[()] == fmt.max_value
        assert fmt.quantize(np.array(-1000.0))[()] == fmt.min_value

    def test_invalid_formats_rejected(self):
        with pytest.raises(ValueError):
            FixedPointFormat(0, 4)
        with pytest.raises(ValueError):
            FixedPointFormat(4, -1)
        with pytest.raises(ValueError):
            FixedPointFormat(60, 10)

    def test_representable(self):
        fmt = FixedPointFormat(8, 2)
        assert fmt.representable(np.array(1.25))
        assert not fmt.representable(np.array(1.1))


class TestBitFlips:
    def test_flip_low_bit_small_change(self):
        flipped = FIXED32.flip_bit(2.0, 0)
        assert abs(flipped - 2.0) == pytest.approx(FIXED32.resolution)

    def test_flip_high_bit_large_change(self):
        flipped = FIXED32.flip_bit(2.0, 30)
        assert abs(flipped - 2.0) > 1e5

    def test_flip_sign_bit_makes_negative(self):
        flipped = FIXED16.flip_bit(1.0, 15)
        assert flipped < 0

    def test_flip_out_of_range_bit(self):
        with pytest.raises(ValueError):
            FIXED16.flip_bit(1.0, 16)

    def test_flip_bits_multiple(self):
        value = FIXED16.flip_bits(0.0, [0, 1])
        assert value == pytest.approx(0.25 + 0.5)

    def test_bit_weight_monotone(self):
        weights = [FIXED16.bit_weight(b) for b in range(FIXED16.total_bits - 1)]
        assert all(weights[i] < weights[i + 1] for i in range(len(weights) - 1))

    def test_float32_flip_sign(self):
        assert flip_float32_bit(1.0, 31) == -1.0

    def test_float32_flip_mantissa_small(self):
        flipped = flip_float32_bit(1.0, 0)
        assert flipped != 1.0
        assert abs(flipped - 1.0) < 1e-6

    def test_float32_invalid_bit(self):
        with pytest.raises(ValueError):
            flip_float32_bit(1.0, 32)


class TestPolicies:
    def test_policy_names(self):
        assert fixed32_policy().name == "fixed32"
        assert fixed16_policy().name == "fixed16"

    def test_policy_skips_variables(self):
        from repro.graph.graph import Node
        from repro import ops
        policy = fixed16_policy()
        node = Node("w", ops.Variable(np.array([0.1])))
        value = np.array([0.1])
        np.testing.assert_array_equal(policy.apply(node, value), value)

    def test_policy_quantizes_compute_nodes(self):
        from repro.graph.graph import Node
        from repro import ops
        policy = fixed16_policy()
        node = Node("m", ops.MatMul(), ("a", "b"))
        out = policy.apply(node, np.array([0.1]))
        assert out[0] in (0.0, 0.25)


# ---------------------------------------------------------------------------
# Property-based tests
# ---------------------------------------------------------------------------

formats = st.builds(FixedPointFormat,
                    integer_bits=st.integers(min_value=2, max_value=24),
                    fraction_bits=st.integers(min_value=0, max_value=16))


@given(formats, st.floats(min_value=-1000, max_value=1000, allow_nan=False))
@settings(max_examples=100, deadline=None)
def test_quantize_idempotent(fmt, value):
    """Quantizing twice equals quantizing once."""
    once = fmt.quantize(np.array(value))
    twice = fmt.quantize(once)
    np.testing.assert_allclose(once, twice)


@given(formats, st.floats(min_value=-1000, max_value=1000, allow_nan=False))
@settings(max_examples=100, deadline=None)
def test_quantize_error_bounded_in_range(fmt, value):
    """Within the representable range, the rounding error is at most half an LSB."""
    if fmt.min_value <= value <= fmt.max_value:
        quantized = float(fmt.quantize(np.array(value))[()])
        assert abs(quantized - value) <= fmt.resolution / 2 + 1e-12


@given(formats, st.floats(min_value=-500, max_value=500, allow_nan=False),
       st.data())
@settings(max_examples=100, deadline=None)
def test_bit_flip_is_involution(fmt, value, data):
    """Flipping the same bit twice restores the quantized value."""
    bit = data.draw(st.integers(min_value=0, max_value=fmt.total_bits - 1))
    quantized = float(fmt.quantize(np.array(value))[()])
    flipped = fmt.flip_bit(quantized, bit)
    restored = fmt.flip_bit(flipped, bit)
    assert restored == pytest.approx(quantized)


@given(formats, st.floats(min_value=-500, max_value=500, allow_nan=False),
       st.data())
@settings(max_examples=100, deadline=None)
def test_bit_flip_stays_representable(fmt, value, data):
    """A flipped value is always representable in the same format."""
    bit = data.draw(st.integers(min_value=0, max_value=fmt.total_bits - 1))
    flipped = fmt.flip_bit(value, bit)
    assert fmt.min_value <= flipped <= fmt.max_value
    assert bool(fmt.representable(np.array(flipped)))


@given(st.floats(min_value=0.1, max_value=1000, allow_nan=False),
       st.integers(min_value=0, max_value=20),
       st.integers(min_value=21, max_value=30))
@settings(max_examples=60, deadline=None)
def test_higher_bits_cause_larger_deviation(value, low_bit, high_bit):
    """The monotone-impact property behind Ranger: flips in higher-order bits
    produce deviations at least as large as flips in lower-order bits."""
    quantized = float(FIXED32.quantize(np.array(value))[()])
    low_dev = abs(FIXED32.flip_bit(quantized, low_bit) - quantized)
    high_dev = abs(FIXED32.flip_bit(quantized, high_bit) - quantized)
    assert high_dev >= low_dev
