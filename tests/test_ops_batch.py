"""Batch-transparency audit for the operator library.

The batched replay engine stacks B independent trials along the batch axis,
which is only sound for operators that treat batch rows independently at
inference.  This suite audits the contract two ways:

* behaviourally — for every operator used by the model zoo, evaluating a
  stacked batch must equal stacking the per-row evaluations (exactly: these
  kernels are elementwise/strided, so no BLAS reassociation is involved at
  the op level except for the matmul-backed ones, which are checked to the
  ULP tolerance the engine assumes);
* declaratively — ``batch_transparent`` must be False exactly for the
  batch-coupled configurations (training-mode BatchNorm/Dropout, axis-0
  concat), and the batched executor must refuse to replay through them.
"""

import numpy as np
import pytest

from repro import ops
from repro.graph import Executor, Graph, GraphError, ulp_distance


RNG = np.random.default_rng(7)


def stacked_equals_rowwise(op, *inputs, batch_inputs=(0,), max_ulps=4):
    """Evaluate ``op`` batched and row-by-row; compare within ``max_ulps``."""
    batched_out = op.forward(*inputs)
    batch = inputs[batch_inputs[0]].shape[0]
    for row in range(batch):
        row_args = [arg[row:row + 1] if position in batch_inputs else arg
                    for position, arg in enumerate(inputs)]
        row_out = op.forward(*row_args)
        dist = ulp_distance(batched_out[row:row + 1], row_out)
        assert dist.max() <= max_ulps, (
            f"{type(op).__name__} row {row} deviates by {dist.max()} ulps")


NHWC = RNG.standard_normal((5, 6, 6, 3))
FLAT = RNG.standard_normal((5, 12))


@pytest.mark.parametrize("op,inputs,batch_inputs", [
    (ops.ReLU(), (NHWC,), (0,)),
    (ops.LeakyReLU(0.1), (NHWC,), (0,)),
    (ops.ELU(), (NHWC,), (0,)),
    (ops.Tanh(), (FLAT,), (0,)),
    (ops.Sigmoid(), (FLAT,), (0,)),
    (ops.Atan(), (FLAT,), (0,)),
    (ops.ScaledAtan(2.0), (FLAT,), (0,)),
    (ops.Softmax(), (FLAT,), (0,)),
    (ops.Scale(1.7), (FLAT,), (0,)),
    (ops.BiasAdd(), (FLAT, RNG.standard_normal(12)), (0,)),
    (ops.Add(), (NHWC, RNG.standard_normal(NHWC.shape)), (0, 1)),
    (ops.Multiply(), (NHWC, RNG.standard_normal(NHWC.shape)), (0, 1)),
    (ops.Minimum(), (FLAT, np.full(12, 0.5)), (0,)),
    (ops.Maximum(), (FLAT, np.full(12, -0.5)), (0,)),
    (ops.ClipByValue(-1.0, 1.0), (FLAT,), (0,)),
    (ops.Reshape((3, 4)), (FLAT,), (0,)),
    (ops.Flatten(), (NHWC,), (0,)),
    (ops.Pad2D((1, 1), (1, 1)), (NHWC,), (0,)),
    (ops.Dropout(0.5), (NHWC,), (0,)),  # inference mode: identity
    (ops.MaxPool2D(2), (NHWC,), (0,)),
    (ops.AvgPool2D(2), (NHWC,), (0,)),
    (ops.GlobalAvgPool(), (NHWC,), (0,)),
    (ops.LocalResponseNorm(), (NHWC,), (0,)),
    (ops.Concatenate(axis=-1), (NHWC, NHWC + 1.0), (0, 1)),
], ids=lambda value: type(value).__name__ if isinstance(value, ops.Operator)
   else None)
def test_stacked_rows_equal_rowwise_runs(op, inputs, batch_inputs):
    stacked_equals_rowwise(op, *inputs, batch_inputs=batch_inputs)
    assert op.batch_transparent


@pytest.mark.parametrize("op,inputs", [
    (ops.Conv2D(stride=1, padding="same"),
     (NHWC, RNG.standard_normal((3, 3, 3, 4)))),
    (ops.MatMul(), (FLAT, RNG.standard_normal((12, 7)))),
], ids=["Conv2D", "MatMul"])
def test_blas_backed_ops_are_rowwise_up_to_reassociation(op, inputs):
    """The matmul-backed ops: row-independent up to BLAS blocking noise.

    ULP distance is a *relative* measure, so reassociation noise on an
    output that nearly cancels to zero can read as tens-to-hundreds of
    ULPs while the absolute error stays ~1e-16 of the operand scale —
    measured here at up to ~100 ULPs.  This is exactly why the batched
    engine's default row-masking tolerance is deliberately small (rows
    beyond it merely stay dirty; correctness never depends on masking)
    and why batched campaigns carry ULP_TOLERANT instead of EXACT.
    """
    stacked_equals_rowwise(op, *inputs, batch_inputs=(0,), max_ulps=4096)
    assert op.batch_transparent
    batched = op.forward(*inputs)
    rows = np.concatenate([op.forward(inputs[0][i:i + 1], *inputs[1:])
                           for i in range(inputs[0].shape[0])])
    np.testing.assert_allclose(batched, rows, rtol=1e-12, atol=1e-13)


def test_inference_batchnorm_is_transparent():
    bn = ops.BatchNorm()
    gamma, beta = np.ones(3), np.zeros(3)
    bn.forward(NHWC, gamma, beta)  # initializes moving statistics
    assert bn.batch_transparent
    stacked_equals_rowwise(bn, NHWC, gamma, beta, batch_inputs=(0,))


def test_training_batchnorm_is_coupled():
    bn = ops.BatchNorm()
    bn.training = True
    assert not bn.batch_transparent


def test_training_dropout_is_coupled():
    dropout = ops.Dropout(0.5)
    dropout.training = True
    assert not dropout.batch_transparent
    dropout.rate = 0.0
    assert dropout.batch_transparent  # rate-0 dropout is identity either way


def test_axis0_concat_is_coupled():
    assert not ops.Concatenate(axis=0).batch_transparent
    assert ops.Concatenate(axis=-1).batch_transparent
    assert ops.Concatenate(axis=3).batch_transparent


def test_variables_and_constants_are_batch_invariant():
    assert ops.Variable(np.zeros((3, 3))).batch_axis is None
    assert ops.Constant(np.zeros(3)).batch_axis is None
    assert ops.Placeholder().batch_axis == 0
    assert ops.ReLU().batch_axis == 0


class TestExecutorRefusesCoupledOps:
    def _graph(self):
        g = Graph("bn")
        g.add("x", ops.Placeholder(name="x", shape=(3,)))
        g.add("gamma", ops.Variable(np.ones(3), name="gamma"))
        g.add("beta", ops.Variable(np.zeros(3), name="beta"))
        g.add("bn", ops.BatchNorm(), inputs=["x", "gamma", "beta"])
        g.add("out", ops.Identity(), inputs=["bn"])
        g.mark_output("out")
        return g

    def test_training_bn_in_cone_raises(self):
        graph = self._graph()
        executor = Executor(graph)
        cache = executor.run({"x": np.zeros((1, 3))}).values
        graph.node("bn").op.training = True
        stacked = {"x": np.arange(9.0).reshape(3, 3)}
        with pytest.raises(GraphError, match="batch-coupled"):
            executor.run_from_batched(cache, stacked_dirty_values=stacked)

    def test_inference_bn_in_cone_is_accepted(self):
        graph = self._graph()
        executor = Executor(graph)
        cache = executor.run({"x": np.zeros((1, 3))}).values
        stacked = {"x": np.arange(9.0).reshape(3, 3)}
        result = executor.run_from_batched(cache,
                                           stacked_dirty_values=stacked)
        expected = executor.run({"x": stacked["x"]})
        assert np.allclose(result.output("out"), expected.output("out"))

    def test_batch_invariant_reeval_seed_rejected(self):
        graph = self._graph()
        executor = Executor(graph)
        cache = executor.run({"x": np.zeros((1, 3))}).values
        stacked = {"x": np.arange(9.0).reshape(3, 3)}
        with pytest.raises(GraphError, match="batch-invariant"):
            executor.run_from_batched(cache, dirty="gamma",
                                      stacked_dirty_values=stacked)
