"""Edge-case coverage for ``Executor.run_from`` partial re-execution.

The incremental engine's happy path is covered by the zoo-wide equivalence
suite (``tests/test_incremental.py``); this module pins down the corners:
faults seeded at a graph *input* node, cone queries with multiple requested
outputs, and degraded caches — a dirty node (or a cone input) missing from
the cache must raise a descriptive :class:`GraphError`, never a bare
``KeyError``.
"""

import numpy as np
import pytest

from repro import ops
from repro.graph import Executor, Graph, GraphError


def small_graph():
    """input -> scale -> relu -> (out_a); relu -> neg_scale -> (out_b)."""
    g = Graph("edges")
    g.add("x", ops.Placeholder(name="x", shape=(4,)))
    g.add("scale", ops.Scale(2.0), inputs=["x"])
    g.add("relu", ops.ReLU(), inputs=["scale"])
    g.add("out_a", ops.Identity(), inputs=["relu"])
    g.add("neg", ops.Scale(-1.0), inputs=["relu"])
    g.add("out_b", ops.Identity(), inputs=["neg"])
    g.mark_output("out_a")
    g.mark_output("out_b")
    return g


@pytest.fixture()
def executor():
    return Executor(small_graph())


@pytest.fixture()
def cache(executor):
    return executor.run({"x": np.arange(4.0)[None]}).values


class TestInputNodeFaults:
    def test_dirty_placeholder_replays_from_new_feed(self, executor, cache):
        """A fault at the graph input: re-feed the placeholder and replay."""
        corrupted = np.arange(4.0)[None] + 1.0
        result = executor.run_from(cache, dirty="x", feed={"x": corrupted})
        expected = executor.run({"x": corrupted})
        assert result.output("out_a").tobytes() == \
            expected.output("out_a").tobytes()
        assert result.output("out_b").tobytes() == \
            expected.output("out_b").tobytes()
        assert "x" in result.recomputed

    def test_dirty_placeholder_without_feed_raises(self, executor, cache):
        with pytest.raises(GraphError, match="no value was fed"):
            executor.run_from(cache, dirty="x")

    def test_placeholder_override_skips_reevaluation(self, executor, cache):
        """dirty_values at an input node installs the value directly."""
        corrupted = np.array([[5.0, -1.0, 2.0, 0.0]])
        result = executor.run_from(cache, dirty_values={"x": corrupted})
        expected = executor.run({"x": corrupted})
        assert result.output("out_a").tobytes() == \
            expected.output("out_a").tobytes()
        # The placeholder itself was not re-evaluated, only its consumers.
        assert "x" not in result.recomputed
        assert "scale" in result.recomputed


class TestMultiOutputCones:
    def test_both_outputs_recomputed_from_shared_cone(self, executor, cache):
        dirty = np.array([[9.0, 9.0, 9.0, 9.0]])
        result = executor.run_from(cache, dirty_values={"relu": dirty})
        assert result.output("out_a").tobytes() == \
            np.ascontiguousarray(dirty).tobytes()
        assert result.output("out_b").tobytes() == \
            np.ascontiguousarray(-dirty).tobytes()
        # Only the cone below the dirty node was touched.
        assert result.recomputed == {"out_a", "neg", "out_b"}

    def test_output_subset_prunes_sibling_branch(self, executor, cache):
        dirty = np.array([[9.0, 9.0, 9.0, 9.0]])
        result = executor.run_from(cache, dirty_values={"relu": dirty},
                                   outputs=["out_b"])
        assert result.recomputed == {"neg", "out_b"}
        assert "out_a" not in result.recomputed

    def test_output_outside_cone_served_from_cache(self, executor, cache):
        """A requested output the fault cannot reach keeps its cached bits."""
        dirty = np.array([[1.0, 1.0, 1.0, 1.0]])
        result = executor.run_from(cache, dirty_values={"neg": dirty},
                                   outputs=["out_a", "out_b"])
        assert result.output("out_a").tobytes() == cache["out_a"].tobytes()
        assert result.recomputed == {"out_b"}


class TestDegradedCaches:
    def test_missing_cone_input_raises_graph_error(self, executor, cache):
        """A cone node's input missing from the cache: clear error, not KeyError."""
        broken = dict(cache)
        del broken["relu"]  # input of 'neg' and 'out_a'
        with pytest.raises(GraphError, match="no cached value for input"):
            executor.run_from(broken, dirty="neg")

    def test_missing_dirty_seed_inputs_raise_graph_error(self, executor, cache):
        broken = {"x": cache["x"]}  # only the placeholder survives
        with pytest.raises(GraphError, match="no cached value"):
            executor.run_from(broken, dirty="relu")

    def test_unknown_dirty_node_raises(self, executor, cache):
        with pytest.raises(GraphError, match="unknown dirty node"):
            executor.run_from(cache, dirty="nonexistent")

    def test_requested_output_missing_everywhere_raises(self, executor, cache):
        broken = dict(cache)
        del broken["out_a"]
        # The dirty cone ('neg' onward) never reaches out_a, and the cache
        # does not hold it either: the error must name the output.
        dirty = np.array([[1.0, 1.0, 1.0, 1.0]])
        with pytest.raises(GraphError, match="out_a"):
            executor.run_from(broken, dirty_values={"neg": dirty},
                              outputs=["out_a", "out_b"])

    def test_no_keyerror_escapes_degraded_caches(self, executor, cache):
        """Sweep: dropping any single cache entry yields GraphError or success."""
        dirty = np.array([[3.0, 1.0, 4.0, 1.0]])
        for name in list(cache):
            broken = dict(cache)
            del broken[name]
            try:
                executor.run_from(broken, dirty_values={"scale": dirty})
            except GraphError:
                pass  # acceptable: descriptive failure
            except KeyError as exc:  # pragma: no cover - the regression
                pytest.fail(f"raw KeyError leaked for missing '{name}': {exc}")
