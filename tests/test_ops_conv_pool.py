"""Unit tests for convolution and pooling operators, including gradient checks."""

import numpy as np
import pytest

from repro import ops
from repro.ops.conv import col2im, compute_padding, conv_output_size, im2col


def numerical_gradient(f, x, eps=1e-5):
    """Central-difference numerical gradient of a scalar function."""
    grad = np.zeros_like(x, dtype=np.float64)
    flat = x.reshape(-1)
    grad_flat = grad.reshape(-1)
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + eps
        plus = f(x)
        flat[i] = original - eps
        minus = f(x)
        flat[i] = original
        grad_flat[i] = (plus - minus) / (2 * eps)
    return grad


class TestPaddingMath:
    def test_valid_padding_is_zero(self):
        assert compute_padding(10, 3, 1, "valid") == (0, 0)

    def test_same_padding_preserves_size_stride1(self):
        for size in (5, 8, 13):
            for kernel in (1, 3, 5):
                assert conv_output_size(size, kernel, 1, "same") == size

    def test_same_padding_stride2_halves(self):
        assert conv_output_size(8, 3, 2, "same") == 4
        assert conv_output_size(9, 3, 2, "same") == 5

    def test_valid_output_size(self):
        assert conv_output_size(8, 3, 1, "valid") == 6

    def test_unknown_padding_rejected(self):
        with pytest.raises(ValueError):
            compute_padding(8, 3, 1, "reflect")


class TestIm2Col:
    def test_round_trip_shapes(self, rng):
        x = rng.normal(size=(2, 6, 6, 3))
        cols, (oh, ow) = im2col(x, 3, 3, 1, "same")
        assert cols.shape == (2 * 6 * 6, 3 * 3 * 3)
        assert (oh, ow) == (6, 6)

    def test_identity_kernel_recovers_input(self, rng):
        x = rng.normal(size=(1, 5, 5, 1))
        cols, _ = im2col(x, 1, 1, 1, "valid")
        np.testing.assert_allclose(cols.reshape(x.shape), x)


class TestConv2D:
    def test_output_shape_same_padding(self, rng):
        x = rng.normal(size=(2, 8, 8, 3))
        k = rng.normal(size=(3, 3, 3, 5))
        out = ops.Conv2D(stride=1, padding="same").forward(x, k)
        assert out.shape == (2, 8, 8, 5)

    def test_output_shape_strided(self, rng):
        x = rng.normal(size=(1, 8, 8, 2))
        k = rng.normal(size=(3, 3, 2, 4))
        out = ops.Conv2D(stride=2, padding="same").forward(x, k)
        assert out.shape == (1, 4, 4, 4)

    def test_matches_direct_computation(self, rng):
        """Compare against a naive triple-loop convolution."""
        x = rng.normal(size=(1, 5, 5, 2))
        k = rng.normal(size=(3, 3, 2, 3))
        out = ops.Conv2D(stride=1, padding="valid").forward(x, k)
        naive = np.zeros((1, 3, 3, 3))
        for i in range(3):
            for j in range(3):
                patch = x[0, i:i + 3, j:j + 3, :]
                for c in range(3):
                    naive[0, i, j, c] = np.sum(patch * k[:, :, :, c])
        np.testing.assert_allclose(out, naive, atol=1e-10)

    def test_channel_mismatch_raises(self, rng):
        x = rng.normal(size=(1, 4, 4, 3))
        k = rng.normal(size=(3, 3, 2, 4))
        with pytest.raises(ops.OperatorError):
            ops.Conv2D().forward(x, k)

    def test_invalid_configuration_rejected(self):
        with pytest.raises(ValueError):
            ops.Conv2D(stride=0)
        with pytest.raises(ValueError):
            ops.Conv2D(padding="full")

    def test_gradient_wrt_input_and_kernel(self, rng):
        x = rng.normal(size=(1, 5, 5, 2))
        k = rng.normal(size=(3, 3, 2, 2))
        op = ops.Conv2D(stride=1, padding="same")

        out = op.forward(x, k)
        upstream = rng.normal(size=out.shape)
        grad_x, grad_k = op.backward(upstream, [x, k], out)

        num_x = numerical_gradient(
            lambda v: float(np.sum(op.forward(v, k) * upstream)), x.copy())
        num_k = numerical_gradient(
            lambda v: float(np.sum(op.forward(x, v) * upstream)), k.copy())
        np.testing.assert_allclose(grad_x, num_x, atol=1e-4)
        np.testing.assert_allclose(grad_k, num_k, atol=1e-4)

    def test_flops_scale_with_kernel_and_output(self):
        op = ops.Conv2D()
        flops = op.flops([(1, 8, 8, 3), (3, 3, 3, 16)], (1, 8, 8, 16))
        assert flops == 2 * 3 * 3 * 3 * 8 * 8 * 16


class TestMaxPool:
    def test_reduces_spatial_size(self, rng):
        x = rng.normal(size=(2, 8, 8, 3))
        out = ops.MaxPool2D(pool=2).forward(x)
        assert out.shape == (2, 4, 4, 3)

    def test_takes_window_maximum(self):
        x = np.arange(16, dtype=float).reshape(1, 4, 4, 1)
        out = ops.MaxPool2D(pool=2).forward(x)
        np.testing.assert_array_equal(out[0, :, :, 0],
                                      np.array([[5.0, 7.0], [13.0, 15.0]]))

    def test_gradient_routes_to_argmax(self, rng):
        x = rng.normal(size=(1, 4, 4, 2))
        op = ops.MaxPool2D(pool=2)
        out = op.forward(x)
        upstream = rng.normal(size=out.shape)
        (grad_x,) = op.backward(upstream, [x], out)
        num = numerical_gradient(
            lambda v: float(np.sum(op.forward(v) * upstream)), x.copy())
        np.testing.assert_allclose(grad_x, num, atol=1e-4)

    def test_category_is_pooling(self):
        assert ops.MaxPool2D().category == "pooling"

    def test_monotone_in_each_input(self, rng):
        """Increasing any single input value never decreases the pooled output."""
        x = rng.normal(size=(1, 4, 4, 1))
        op = ops.MaxPool2D(pool=2)
        base = op.forward(x)
        bumped = x.copy()
        bumped[0, 1, 1, 0] += 10.0
        assert np.all(op.forward(bumped) >= base - 1e-12)


class TestAvgPool:
    def test_takes_window_mean(self):
        x = np.arange(16, dtype=float).reshape(1, 4, 4, 1)
        out = ops.AvgPool2D(pool=2).forward(x)
        np.testing.assert_allclose(out[0, :, :, 0],
                                   np.array([[2.5, 4.5], [10.5, 12.5]]))

    def test_gradient_matches_numerical(self, rng):
        x = rng.normal(size=(1, 4, 4, 2))
        op = ops.AvgPool2D(pool=2)
        out = op.forward(x)
        upstream = rng.normal(size=out.shape)
        (grad_x,) = op.backward(upstream, [x], out)
        num = numerical_gradient(
            lambda v: float(np.sum(op.forward(v) * upstream)), x.copy())
        np.testing.assert_allclose(grad_x, num, atol=1e-4)


class TestGlobalAvgPool:
    def test_output_shape(self, rng):
        x = rng.normal(size=(3, 5, 7, 4))
        out = ops.GlobalAvgPool().forward(x)
        assert out.shape == (3, 4)

    def test_equals_mean(self, rng):
        x = rng.normal(size=(2, 3, 3, 2))
        np.testing.assert_allclose(ops.GlobalAvgPool().forward(x),
                                   x.mean(axis=(1, 2)))

    def test_gradient(self, rng):
        x = rng.normal(size=(1, 3, 3, 2))
        op = ops.GlobalAvgPool()
        out = op.forward(x)
        upstream = rng.normal(size=out.shape)
        (grad_x,) = op.backward(upstream, [x], out)
        num = numerical_gradient(
            lambda v: float(np.sum(op.forward(v) * upstream)), x.copy())
        np.testing.assert_allclose(grad_x, num, atol=1e-5)

    def test_rejects_non_4d(self):
        with pytest.raises(ops.OperatorError):
            ops.GlobalAvgPool().forward(np.zeros((2, 3)))
