"""Equivalence suite for cross-site (union-cone) batched replay.

PR 4's batched engine only stacked trials that shared an ``(input,
fault-node set)``; the union-cone engine batches trials across *different*
fault sites: each row enters the replay at its own injection node
(per-node row-membership masks), the executor walks the union cone of
every site in the batch, and per-row dirty tracking confines each row to
its own site's cone.  The guarantees under test:

1. **Trial identity is exact.**  Cross-site batches keep per-trial RNG
   streams, so applied-fault records are *bit-identical* to the
   incremental path for every packing, and batching composes with
   ``workers=N``, paired comparisons and the persistent pool.
2. **Verdict sets agree under ULP_TOLERANT** across the zoo subset ×
   {fixed16, fixed32} × {unprotected, Ranger} × batch widths {8, 32} —
   and on ResNet-18, whose skip connections force every surviving row
   through the convergence adds.
3. **Adversarial cone shapes behave.**  Disjoint cones keep each other's
   rows golden, nested cones pass early rows *through* later entry nodes,
   skip-connection convergence merges packed rows correctly, and a
   batch-coupled operator anywhere in the union is refused with
   ``GraphError``.
4. **The packer is safe.**  ``pack_batches`` partitions every position,
   respects the width cap, never mixes inputs, falls back to per-site
   groups when the union-cone budget is exceeded, and is deterministic.
5. **``CampaignPool`` is invisible in the results.**  Pooled sweeps are
   bit-identical to fresh per-campaign runs, including paired comparisons
   and reuse across distinct campaign configurations.
"""

import numpy as np
import pytest

from repro import ops
from repro.core import Ranger
from repro.graph import EquivalenceMode, Executor, Graph, GraphError
from repro.injection import (
    CampaignPool,
    CampaignResult,
    FaultInjectionCampaign,
    FaultInjector,
    SingleBitFlip,
    compare_protection,
    trial_rng,
)
from repro.injection.injector import InjectionPlan
from repro.models import prepare_model
from repro.quantization import FIXED16, FIXED32, fixed16_policy, fixed32_policy

ZOO_SUBSET = ("lenet", "squeezenet")
TRIALS = 32
BATCH_WIDTHS = (8, 32)
DTYPE_POLICIES = {"fixed16": fixed16_policy, "fixed32": fixed32_policy}


@pytest.fixture(scope="module", params=ZOO_SUBSET)
def subset_prepared(request):
    return prepare_model(request.param, train=False, seed=1)


@pytest.fixture(scope="module")
def resnet_prepared():
    return prepare_model("resnet18", train=False, seed=1)


# ---------------------------------------------------------------------------
# Hand-built graphs: the adversarial cone shapes, checked row-for-row
# against the batch-1 ``run_from`` replay.  Every operator here is
# elementwise (no BLAS), so batched rows must be *bit-identical* to their
# batch-1 replays and the tests can compare raw bytes under EXACT mode.
# ---------------------------------------------------------------------------


def chain_graph():
    """x -> a -> b -> c -> out (one straight cone; b's cone nests in a's)."""
    g = Graph("chain")
    g.add("x", ops.Placeholder(name="x", shape=(4,)))
    g.add("a", ops.Scale(1.5), inputs=["x"])
    g.add("b", ops.ReLU(), inputs=["a"])
    g.add("c", ops.Scale(0.5), inputs=["b"])
    g.add("out", ops.Identity(), inputs=["c"])
    g.mark_output("out")
    return g


def branch_graph():
    """Two disjoint branches joined by a feature-axis concat at the top."""
    g = Graph("branches")
    g.add("x", ops.Placeholder(name="x", shape=(4,)))
    g.add("left", ops.Scale(2.0), inputs=["x"])
    g.add("left_relu", ops.ReLU(), inputs=["left"])
    g.add("right", ops.Scale(-1.0), inputs=["x"])
    g.add("right_relu", ops.ReLU(), inputs=["right"])
    g.add("join", ops.Concatenate(axis=-1),
          inputs=["left_relu", "right_relu"])
    g.add("out", ops.Identity(), inputs=["join"])
    g.mark_output("out")
    return g


def skip_graph():
    """x -> a -> b -> add(a, b) -> out: a residual-style convergence."""
    g = Graph("skip")
    g.add("x", ops.Placeholder(name="x", shape=(4,)))
    g.add("a", ops.Scale(1.25), inputs=["x"])
    g.add("b", ops.ReLU(), inputs=["a"])
    g.add("add", ops.Add(), inputs=["a", "b"])
    g.add("out", ops.Identity(), inputs=["add"])
    g.mark_output("out")
    return g


def run_cross_site(graph, entries, feed):
    """Batched replay with per-row entries vs. per-row run_from replays.

    ``entries`` maps node -> list of (row, corrupted (1, ...) value); the
    batch width is the total row count.  Returns (batched outputs, list of
    per-row reference outputs).
    """
    executor = Executor(graph)
    cache = executor.run(feed).values
    batch = sum(len(rows) for rows in entries.values())
    masks, packed = {}, {}
    per_row_site = {}
    for name, rows in entries.items():
        mask = np.zeros(batch, dtype=bool)
        values = []
        for row, value in rows:
            mask[row] = True
            per_row_site[row] = (name, value)
        for row in sorted(row for row, _ in rows):
            values.append(np.asarray(dict(rows)[row])[0])
        masks[name] = mask
        packed[name] = np.stack(values)
    result = executor.run_from_batched(
        cache, stacked_dirty_values=packed, dirty_row_masks=masks,
        equivalence=EquivalenceMode.EXACT)
    references = []
    for row in range(batch):
        name, value = per_row_site[row]
        references.append(executor.run_from(
            cache, dirty_values={name: np.asarray(value)}))
    return result, references


class TestAdversarialCones:
    FEED = {"x": np.array([[1.0, -2.0, 3.0, 0.5]])}

    def test_nested_cones_flow_through_entry_nodes(self):
        """Row 0 enters upstream of row 1's entry; both replay bit-exactly.

        Row 0's dirt must be re-evaluated *through* node ``c`` even though
        ``c`` is row 1's entry node (where row 1's value is installed
        as-is).
        """
        graph = chain_graph()
        result, refs = run_cross_site(graph, {
            "a": [(0, np.array([[9.0, 9.0, 9.0, 9.0]]))],
            "c": [(1, np.array([[-4.0, -4.0, -4.0, -4.0]]))],
        }, self.FEED)
        stacked = result.output("out")
        for row, ref in enumerate(refs):
            assert stacked[row].tobytes() == ref.output("out").tobytes(), row
        # c was re-evaluated (for row 0) even though it is row 1's entry.
        assert "c" in result.recomputed

    def test_disjoint_cones_keep_foreign_rows_golden(self):
        graph = branch_graph()
        result, refs = run_cross_site(graph, {
            "left": [(0, np.array([[5.0, 5.0, 5.0, 5.0]]))],
            "right": [(1, np.array([[7.0, 7.0, 7.0, 7.0]]))],
        }, self.FEED)
        stacked = result.output("out")
        for row, ref in enumerate(refs):
            assert stacked[row].tobytes() == ref.output("out").tobytes(), row
        # Row 0 must never be evaluated in the right branch or vice versa:
        # each branch relu saw exactly one dirty row (2 row-evals), and the
        # post-convergence nodes (join, out) saw both rows (2 × 2).
        assert result.recomputed == {"left_relu", "right_relu", "join", "out"}
        assert result.rows_evaluated == 6

    def test_skip_connection_convergence_merges_rows(self):
        graph = skip_graph()
        result, refs = run_cross_site(graph, {
            "a": [(0, np.array([[2.0, -3.0, 1.0, 4.0]])),
                  (2, np.array([[0.5, 0.5, 0.5, 0.5]]))],
            "b": [(1, np.array([[6.0, 6.0, 6.0, 6.0]]))],
        }, self.FEED)
        stacked = result.output("out")
        for row, ref in enumerate(refs):
            assert stacked[row].tobytes() == ref.output("out").tobytes(), row

    def test_batch_coupled_op_in_union_is_refused(self):
        g = Graph("coupled")
        g.add("x", ops.Placeholder(name="x", shape=(4,)))
        g.add("a", ops.Scale(2.0), inputs=["x"])
        drop = ops.Dropout(rate=0.5)
        drop.training = True
        g.add("drop", drop, inputs=["a"])
        g.add("out", ops.Identity(), inputs=["drop"])
        g.mark_output("out")
        executor = Executor(g)
        drop.training = False
        cache = executor.run({"x": np.ones((1, 4))}).values
        drop.training = True
        masks = {"a": np.array([True, False]), "x": np.array([False, True])}
        packed = {"a": np.full((1, 4), 3.0), "x": np.full((1, 4), 2.0)}
        with pytest.raises(GraphError, match="batch-coupled"):
            executor.run_from_batched(cache, stacked_dirty_values=packed,
                                      dirty_row_masks=masks)

    def test_mask_validation(self):
        graph = chain_graph()
        executor = Executor(graph)
        cache = executor.run(self.FEED).values
        with pytest.raises(GraphError, match="no stacked dirty value"):
            executor.run_from_batched(
                cache, stacked_dirty_values={"a": np.ones((1, 4))},
                dirty_row_masks={"b": np.array([True, False])})
        with pytest.raises(GraphError, match="row mask selects"):
            executor.run_from_batched(
                cache, stacked_dirty_values={"a": np.ones((2, 4))},
                dirty_row_masks={"a": np.array([True, False, False])})
        with pytest.raises(GraphError, match="disagree on the batch size"):
            executor.run_from_batched(
                cache,
                stacked_dirty_values={"a": np.ones((1, 4)),
                                      "b": np.ones((3, 4))},
                dirty_row_masks={"a": np.array([True, False])})

    def test_batch_invariant_entry_is_refused(self):
        """A stacked override at a Variable/Constant cannot stack rows —
        it must be refused, not silently served from the golden cache."""
        g = Graph("invariant")
        g.add("x", ops.Placeholder(name="x", shape=(3,)))
        g.add("w", ops.Variable(np.array([1.0, 2.0, 3.0]), name="w"))
        g.add("sum", ops.Add(), inputs=["x", "w"])
        g.mark_output("sum")
        executor = Executor(g)
        cache = executor.run({"x": np.ones((1, 3))}).values
        with pytest.raises(GraphError, match="batch-invariant"):
            executor.run_from_batched(
                cache, stacked_dirty_values={"w": np.ones((2, 3))})


# ---------------------------------------------------------------------------
# Injector-level: heterogeneous plans in one inject_cached_batch call.
# ---------------------------------------------------------------------------


class TestHeterogeneousInjectorBatches:
    def test_mixed_site_rows_match_their_batch1_replays(self, lenet_prepared):
        """One batch mixing early/middle/late sites: row i must agree with
        trial i's own batch-1 replay (bit-identical faults, same argmax)."""
        model = lenet_prepared.model
        injector = FaultInjector(model, SingleBitFlip(FIXED32), seed=3)
        x = lenet_prepared.dataset.x_val[:1]
        sizes = injector.profile_state_space(x)
        executor = model.executor()
        cache = executor.run({model.input_name: x},
                             outputs=[model.output_name]).values
        names = list(sizes)
        sites = [names[0], names[len(names) // 2], names[-1]]
        plans = [InjectionPlan(sites=[(site, element * 7)])
                 for site in sites for element in range(4)]
        rngs = [trial_rng(11, index) for index in range(len(plans))]
        stacked, batch_faults, result = injector.inject_cached_batch(
            executor, cache, plans, rngs)
        assert result.outputs[model.output_name].shape[0] == len(plans)
        for row, plan in enumerate(plans):
            out, faults, _ = injector.inject_cached(
                executor, cache, plan, rng=trial_rng(11, row))
            assert faults == batch_faults[row]
            assert np.argmax(stacked[row]) == np.argmax(out)
            np.testing.assert_allclose(stacked[row], out[0],
                                       rtol=1e-12, atol=1e-15)

    def test_nested_sites_across_trials(self, lenet_prepared):
        """Trial A's site upstream of trial B's site — allowed and exact
        (the within-plan overlap rejection must not fire across trials)."""
        model = lenet_prepared.model
        injector = FaultInjector(model, SingleBitFlip(FIXED32), seed=5)
        x = lenet_prepared.dataset.x_val[:1]
        sizes = injector.profile_state_space(x)
        executor = model.executor()
        cache = executor.run({model.input_name: x},
                             outputs=[model.output_name]).values
        names = list(sizes)
        upstream, downstream = names[0], names[1]
        assert downstream in model.graph.downstream(upstream)
        plans = [InjectionPlan(sites=[(upstream, 3)]),
                 InjectionPlan(sites=[(downstream, 5)]),
                 InjectionPlan(sites=[(upstream, 11)])]
        rngs = [trial_rng(7, index) for index in range(len(plans))]
        stacked, batch_faults, _ = injector.inject_cached_batch(
            executor, cache, plans, rngs)
        for row, plan in enumerate(plans):
            out, faults, _ = injector.inject_cached(
                executor, cache, plan, rng=trial_rng(7, row))
            assert faults == batch_faults[row]
            np.testing.assert_allclose(stacked[row], out[0],
                                       rtol=1e-12, atol=1e-15)


# ---------------------------------------------------------------------------
# Campaign-level equivalence across the zoo subset.
# ---------------------------------------------------------------------------


class TestZooEquivalence:
    @pytest.mark.parametrize("dtype_name", sorted(DTYPE_POLICIES))
    @pytest.mark.parametrize("use_ranger", [False, True],
                             ids=["unprotected", "ranger"])
    def test_union_batches_match_incremental(self, subset_prepared,
                                             dtype_name, use_ranger):
        prepared = subset_prepared
        model = prepared.model
        if use_ranger:
            sample, _ = prepared.dataset.sample_train(4, seed=0)
            model, _ = Ranger(seed=0).protect(prepared.model,
                                              profile_inputs=sample)
        policy = DTYPE_POLICIES[dtype_name]()
        inputs = prepared.dataset.x_val[:2]

        def build():
            return FaultInjectionCampaign(model, inputs,
                                          fault_model=SingleBitFlip(FIXED16),
                                          dtype_policy=policy, seed=0)

        serial = build()
        plans = serial.generate_plans(TRIALS)
        reference = serial.run(plans=plans, keep_faults=True)
        for width in BATCH_WIDTHS:
            result = build().run(plans=plans, keep_faults=True,
                                 batch_trials=width)
            assert result.equivalence == "ulp_tolerant"
            assert result.sdc_counts == reference.sdc_counts, width
            assert result.faults == reference.faults, width
            # The packer crossed sites: strictly fewer batches than the
            # identical-site grouping would need.
            same_site_batches, _ = build().group_batches(plans, width)
            assert result.batch_count < len(same_site_batches), width
            assert result.batched_fraction > 0.9
            assert result.mean_batch_occupancy > 2.0

    def test_resnet_skip_connections_match_incremental(self, resnet_prepared):
        """Skip-connection convergence at model scale: every surviving row
        rides the residual adds to the output, packed and merged."""
        prepared = resnet_prepared
        inputs = prepared.dataset.x_val[:2]

        def build():
            return FaultInjectionCampaign(prepared.model, inputs,
                                          fault_model=SingleBitFlip(FIXED32),
                                          dtype_policy=fixed32_policy(),
                                          seed=0)

        serial = build()
        plans = serial.generate_plans(24)
        reference = serial.run(plans=plans, keep_faults=True)
        result = build().run(plans=plans, keep_faults=True, batch_trials=8)
        assert result.sdc_counts == reference.sdc_counts
        assert result.faults == reference.faults
        assert result.batch_count < len(build().group_batches(plans, 8)[0])


# ---------------------------------------------------------------------------
# The packer.
# ---------------------------------------------------------------------------


class TestPackBatches:
    def make_campaign(self, prepared):
        return FaultInjectionCampaign(prepared.model,
                                      prepared.dataset.x_val[:3], seed=0)

    def test_partition_width_and_input_purity(self, lenet_prepared):
        campaign = self.make_campaign(lenet_prepared)
        plans = campaign.generate_plans(50)
        for width in (4, 16):
            batches, fallback = campaign.pack_batches(plans, width)
            positions = sorted(p for _, chunk in batches for p in chunk)
            assert positions + sorted(fallback) and \
                sorted(positions + fallback) == list(range(50))
            for input_index, chunk in batches:
                assert 0 < len(chunk) <= width
                assert all(plans[p][0] == input_index for p in chunk)

    def test_packing_is_deterministic(self, lenet_prepared):
        campaign = self.make_campaign(lenet_prepared)
        plans = campaign.generate_plans(40)
        assert campaign.pack_batches(plans, 8) == \
            campaign.pack_batches(plans, 8)

    def test_identical_sites_stay_adjacent(self, lenet_prepared):
        """Trials at one site always land in the same (or consecutive)
        batches — the packer must not interleave distinct sites between
        them when cones are identical."""
        campaign = self.make_campaign(lenet_prepared)
        names = list(campaign.injector._site_sizes)
        plans = [(0, InjectionPlan(sites=[(names[i % 2], i)]))
                 for i in range(12)]
        batches, fallback = campaign.pack_batches(plans, 12)
        assert not fallback
        assert len(batches) == 1  # both sites' cones nest: one full batch
        # Same-site trials are contiguous in pack order (site-major).
        site_order = [plans[p][1].sites[0][0] for p in batches[0][1]]
        changes = sum(1 for a, b in zip(site_order, site_order[1:]) if a != b)
        assert changes == 1
        assert sorted(batches[0][1]) == list(range(12))

    def test_union_budget_falls_back_to_per_site_groups(self, lenet_prepared):
        """A sub-1.0 budget factor can never admit a second distinct cone,
        so packing degenerates to identical-cone groups."""
        campaign = self.make_campaign(lenet_prepared)
        plans = campaign.generate_plans(30)
        batches, fallback = campaign.pack_batches(plans, 32,
                                                  union_cost_factor=0.99)
        for input_index, chunk in batches:
            cones = {frozenset(plans[p][1].node_names()) for p in chunk}
            sizes = {len(campaign._cone_in_needed(c)) for c in cones}
            union = set()
            for cone in cones:
                union |= campaign._cone_in_needed(cone)
            # Union never exceeds the largest member: nested-only packing.
            assert len(union) <= max(sizes)

    def test_overlapping_plans_fall_back(self, lenet_prepared):
        campaign = self.make_campaign(lenet_prepared)
        names = list(campaign.injector._site_sizes)
        upstream, downstream = names[0], names[1]
        plans = [(0, InjectionPlan(sites=[(upstream, 0), (downstream, 1)])),
                 (0, InjectionPlan(sites=[(upstream, 2)]))]
        batches, fallback = campaign.pack_batches(plans, 8)
        assert fallback == [0]
        assert [p for _, chunk in batches for p in chunk] == [1]


# ---------------------------------------------------------------------------
# Occupancy accounting.
# ---------------------------------------------------------------------------


class TestOccupancyReporting:
    def test_summary_and_properties(self, lenet_prepared):
        inputs, _ = lenet_prepared.correctly_predicted_inputs(2, seed=0)
        campaign = FaultInjectionCampaign(lenet_prepared.model, inputs, seed=0)
        result = campaign.run(trials=24, batch_trials=8)
        assert result.batch_count > 0
        assert result.batched_trials + 0 <= result.trials
        assert result.mean_batch_occupancy > 1.0
        assert 0.0 < result.batched_fraction <= 1.0
        text = result.summary()
        assert "mean occupancy" in text
        assert "union-cone overhead" in text

    def test_unbatched_results_report_no_occupancy(self, lenet_prepared):
        inputs, _ = lenet_prepared.correctly_predicted_inputs(2, seed=0)
        campaign = FaultInjectionCampaign(lenet_prepared.model, inputs, seed=0)
        result = campaign.run(trials=5)
        assert result.batch_count == 0
        assert result.mean_batch_occupancy is None
        assert result.batched_fraction == 0.0
        assert "occupancy" not in result.summary()

    def test_merge_adds_occupancy_counters(self):
        shard = CampaignResult(model_name="m", fault_model="f", trials=10,
                               sdc_counts={"top1": 1},
                               equivalence="ulp_tolerant",
                               batch_count=2, batched_trials=9,
                               union_overhead_nodes=5)
        merged = CampaignResult.merge([shard, shard])
        assert merged.batch_count == 4
        assert merged.batched_trials == 18
        assert merged.union_overhead_nodes == 10
        assert merged.mean_batch_occupancy == pytest.approx(4.5)

    def test_workers_carry_occupancy_counters(self, lenet_prepared):
        inputs, _ = lenet_prepared.correctly_predicted_inputs(2, seed=0)

        def build():
            return FaultInjectionCampaign(lenet_prepared.model, inputs, seed=0)

        serial = build()
        plans = serial.generate_plans(24)
        reference = serial.run(plans=plans, batch_trials=8)
        fanned = build().run(plans=plans, batch_trials=8, workers=2)
        assert fanned.batched_trials == reference.batched_trials == 24
        assert fanned.sdc_counts == reference.sdc_counts


# ---------------------------------------------------------------------------
# Paired comparisons: the protected side batches too, on shared packing.
# ---------------------------------------------------------------------------


class TestPairedBatchedComparison:
    def test_both_sides_batch_and_stay_paired(self, lenet_prepared,
                                              lenet_protected):
        protected, _ = lenet_protected
        inputs, _ = lenet_prepared.correctly_predicted_inputs(3, seed=0)
        serial = compare_protection(lenet_prepared.model, protected, inputs,
                                    trials=24, seed=3)
        batched = compare_protection(lenet_prepared.model, protected, inputs,
                                     trials=24, seed=3, batch_trials=8)
        for reference, result in zip(serial, batched):
            assert result.sdc_counts == reference.sdc_counts
            assert result.trials == reference.trials
            # The protected side replays batched too, on the shared packing.
            assert result.batch_count > 0
            assert result.batched_fraction > 0.9
        base, guarded = batched
        assert base.batch_count == guarded.batch_count
        assert base.batched_trials == guarded.batched_trials


# ---------------------------------------------------------------------------
# The persistent pool.
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def campaign_pool():
    with CampaignPool(workers=2) as pool:
        yield pool


class TestCampaignPool:
    def test_pooled_run_is_bit_identical(self, lenet_prepared, campaign_pool):
        inputs, _ = lenet_prepared.correctly_predicted_inputs(3, seed=0)

        def build():
            return FaultInjectionCampaign(lenet_prepared.model, inputs, seed=0)

        serial = build()
        plans = serial.generate_plans(18)
        reference = serial.run(plans=plans, keep_faults=True)
        pooled = build().run(plans=plans, keep_faults=True,
                             pool=campaign_pool)
        repeat = build().run(plans=plans, keep_faults=True,
                             pool=campaign_pool)  # worker-side cache hit
        for result in (pooled, repeat):
            assert result.sdc_counts == reference.sdc_counts
            assert result.faults == reference.faults
            assert result.trials == reference.trials

    def test_pool_reuse_across_distinct_campaigns(self, lenet_prepared,
                                                  campaign_pool):
        """Interleaved configs must not bleed into each other's results."""
        inputs, _ = lenet_prepared.correctly_predicted_inputs(2, seed=0)
        configs = [SingleBitFlip(FIXED32), SingleBitFlip(FIXED16)]
        for fault_model in configs * 2:
            campaign = FaultInjectionCampaign(lenet_prepared.model, inputs,
                                              fault_model=fault_model, seed=1)
            plans = campaign.generate_plans(10)
            reference = FaultInjectionCampaign(
                lenet_prepared.model, inputs, fault_model=fault_model,
                seed=1).run(plans=plans, keep_faults=True)
            pooled = campaign.run(plans=plans, keep_faults=True,
                                  pool=campaign_pool)
            assert pooled.sdc_counts == reference.sdc_counts
            assert pooled.faults == reference.faults

    def test_pooled_batched_compare_protection(self, lenet_prepared,
                                               lenet_protected,
                                               campaign_pool):
        protected, _ = lenet_protected
        inputs, _ = lenet_prepared.correctly_predicted_inputs(2, seed=0)
        serial = compare_protection(lenet_prepared.model, protected, inputs,
                                    trials=16, seed=2, batch_trials=4)
        pooled = compare_protection(lenet_prepared.model, protected, inputs,
                                    trials=16, seed=2, batch_trials=4,
                                    pool=campaign_pool)
        for reference, result in zip(serial, pooled):
            assert result.sdc_counts == reference.sdc_counts
            assert result.equivalence == reference.equivalence

    def test_pool_run_convenience_and_close(self, lenet_prepared):
        inputs, _ = lenet_prepared.correctly_predicted_inputs(2, seed=0)
        campaign = FaultInjectionCampaign(lenet_prepared.model, inputs, seed=0)
        plans = campaign.generate_plans(8)
        reference = campaign.run(plans=plans)
        pool = CampaignPool(workers=2)
        try:
            result = pool.run(campaign, plans=plans)
        finally:
            pool.close()
        assert result.sdc_counts == reference.sdc_counts
        assert pool.closed
        pool.close()  # idempotent
        with pytest.raises(RuntimeError, match="closed"):
            pool.run_plans(campaign, plans)

    def test_pool_rejects_bad_worker_count(self):
        with pytest.raises(ValueError, match="workers"):
            CampaignPool(workers=0)
