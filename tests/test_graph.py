"""Unit tests for the dataflow graph, executor and builder."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import ops
from repro.graph import (
    Executor,
    Graph,
    GraphBuilder,
    GraphError,
    set_training_mode,
)
from repro.quantization import FIXED16, FixedPointPolicy


def tiny_graph():
    """x -> relu -> clip, with one variable added in."""
    g = Graph("tiny")
    g.add("x", ops.Placeholder("x"))
    g.add("w", ops.Variable(np.array([[2.0]]), name="w"))
    g.add("matmul", ops.MatMul(), ["x", "w"])
    g.add("relu", ops.ReLU(), ["matmul"])
    g.mark_output("relu")
    return g


class TestGraphStructure:
    def test_add_and_lookup(self):
        g = tiny_graph()
        assert "relu" in g
        assert len(g) == 4
        assert g.node("relu").inputs == ("matmul",)

    def test_duplicate_name_rejected(self):
        g = tiny_graph()
        with pytest.raises(GraphError, match="already exists"):
            g.add("relu", ops.ReLU(), ["matmul"])

    def test_unknown_input_rejected(self):
        g = Graph()
        with pytest.raises(GraphError, match="unknown input"):
            g.add("a", ops.ReLU(), ["missing"])

    def test_unknown_node_lookup(self):
        with pytest.raises(GraphError):
            tiny_graph().node("nope")

    def test_unique_name(self):
        g = tiny_graph()
        assert g.unique_name("fresh") == "fresh"
        assert g.unique_name("relu") == "relu_1"

    def test_consumers(self):
        g = tiny_graph()
        assert [n.name for n in g.consumers("matmul")] == ["relu"]

    def test_topological_order_is_insertion_order(self):
        g = tiny_graph()
        assert g.topological_order() == ["x", "w", "matmul", "relu"]

    def test_placeholders_and_variables(self):
        g = tiny_graph()
        assert [p.name for p in g.placeholders()] == ["x"]
        assert len(g.variables()) == 1
        assert g.num_parameters() == 1

    def test_nodes_by_category(self):
        g = tiny_graph()
        assert [n.name for n in g.nodes_by_category("activation")] == ["relu"]

    def test_mark_output_unknown(self):
        with pytest.raises(GraphError):
            tiny_graph().mark_output("missing")

    def test_adjacency_and_cone_queries(self):
        g = tiny_graph()
        assert g.successors("x") == ["matmul"]
        assert g.successors("matmul") == ["relu"]
        assert g.predecessors("matmul") == ["x", "w"]
        assert g.downstream("matmul") == {"matmul", "relu"}
        assert g.downstream(["x", "w"]) == {"x", "w", "matmul", "relu"}
        assert g.ancestors("relu") == {"x", "w", "matmul", "relu"}
        assert g.ancestors("w") == {"w"}
        with pytest.raises(GraphError):
            g.downstream("missing")
        with pytest.raises(GraphError):
            g.ancestors("missing")

    def test_cone_memos_survive_appends(self):
        g = tiny_graph()
        assert g.downstream("matmul") == {"matmul", "relu"}
        g.add("relu2", ops.ReLU(), ["matmul"])
        assert g.downstream("matmul") == {"matmul", "relu", "relu2"}
        assert g.topo_index()["relu2"] == 4

    def test_downstream_matches_consumer_fixpoint(self):
        """The BFS cone equals the definition via repeated consumer scans."""
        g = tiny_graph()
        g.add("relu2", ops.ReLU(), ["matmul"])
        expected = {"matmul"}
        changed = True
        while changed:
            changed = False
            for node in g:
                if node.name not in expected and \
                        any(i in expected for i in node.inputs):
                    expected.add(node.name)
                    changed = True
        assert g.downstream("matmul") == expected

    def test_summary_mentions_every_node(self):
        text = tiny_graph().summary()
        for name in ("x", "w", "matmul", "relu"):
            assert name in text


class TestGraphDuplication:
    def test_plain_duplicate_preserves_semantics(self):
        g = tiny_graph()
        copy = g.duplicate()
        x = np.array([[3.0]])
        out_orig = Executor(g).run({"x": x}).output()
        out_copy = Executor(copy).run({"x": x}).output()
        np.testing.assert_allclose(out_orig, out_copy)

    def test_duplicate_shares_operator_instances(self):
        g = tiny_graph()
        copy = g.duplicate()
        assert copy.node("w").op is g.node("w").op

    def test_node_hook_can_splice_nodes(self):
        """The import_graph_def + input_map pattern Ranger relies on."""
        g = tiny_graph()

        def hook(new_graph, copied):
            if copied.name == "relu":
                new_graph.add("relu/clip", ops.ClipByValue(0.0, 1.0),
                              ["relu"])
                return "relu/clip"
            return None

        protected = g.duplicate(node_hook=hook)
        assert "relu/clip" in protected
        x = np.array([[5.0]])  # relu output would be 10, clipped to 1
        out = Executor(protected).run({"x": x}).output()
        assert out[0, 0] == pytest.approx(1.0)

    def test_original_graph_untouched_by_hooked_duplicate(self):
        g = tiny_graph()
        g.duplicate(node_hook=lambda ng, n: None)
        assert len(g) == 4

    def test_outputs_remapped_through_hook(self):
        g = tiny_graph()

        def hook(new_graph, copied):
            if copied.name == "relu":
                new_graph.add("guard", ops.ClipByValue(0.0, 2.0), ["relu"])
                return "guard"
            return None

        protected = g.duplicate(node_hook=hook)
        assert protected.outputs == ["guard"]

    def test_bad_hook_replacement_rejected(self):
        g = tiny_graph()
        with pytest.raises(GraphError):
            g.duplicate(node_hook=lambda ng, n: "not-a-node")


class TestExecutor:
    def test_missing_feed_raises(self):
        with pytest.raises(GraphError, match="placeholder"):
            Executor(tiny_graph()).run({})

    def test_requested_output_not_in_graph(self):
        with pytest.raises(GraphError):
            Executor(tiny_graph()).run({"x": np.ones((1, 1))},
                                       outputs=["missing"])

    def test_no_outputs_configured(self):
        g = Graph()
        g.add("x", ops.Placeholder("x"))
        with pytest.raises(GraphError, match="no outputs"):
            Executor(g).run({"x": np.ones(1)})

    def test_output_hook_modifies_value(self):
        g = tiny_graph()
        ex = Executor(g)

        def hook(node, value):
            if node.name == "matmul":
                return value * 0.0
            return value

        ex.add_output_hook(hook)
        out = ex.run({"x": np.array([[4.0]])}).output()
        assert out[0, 0] == 0.0
        ex.remove_output_hook(hook)
        out = ex.run({"x": np.array([[4.0]])}).output()
        assert out[0, 0] == 8.0

    def test_observer_sees_every_node(self):
        g = tiny_graph()
        ex = Executor(g)
        seen = []
        ex.add_observer(lambda node, value: seen.append(node.name))
        ex.run({"x": np.array([[1.0]])})
        assert set(seen) == {"x", "w", "matmul", "relu"}

    def test_values_contains_intermediates(self):
        result = Executor(tiny_graph()).run({"x": np.array([[2.0]])})
        assert result.values["matmul"][0, 0] == 4.0

    def test_fixed_point_policy_quantizes(self):
        g = tiny_graph()
        ex = Executor(g, dtype_policy=FixedPointPolicy(FIXED16))
        out = ex.run({"x": np.array([[1.3]])}).output()
        # Q14.2 resolution is 0.25, so 2.6 is quantized to a multiple of 0.25.
        assert out[0, 0] % 0.25 == pytest.approx(0.0)

    def test_gradients_flow_to_variables(self):
        g = tiny_graph()
        ex = Executor(g)
        x = np.array([[3.0]])
        _, grads = ex.run_with_gradients({"x": x}, {"relu": np.array([[1.0]])})
        w = g.variables()[0]
        assert w.grad is not None
        assert w.grad[0, 0] == pytest.approx(3.0)
        assert grads["x"][0, 0] == pytest.approx(2.0)

    def test_set_training_mode(self):
        b = GraphBuilder("m", seed=0)
        x = b.input((4,), "input")
        d = b.dropout(x, 0.5, "drop")
        b.output(d)
        set_training_mode(b.graph, True)
        assert b.graph.node("drop").op.training is True
        set_training_mode(b.graph, False)
        assert b.graph.node("drop").op.training is False


def branchy_graph():
    """x -> matmul -> {relu (output), relu_dead} — one dead branch."""
    g = tiny_graph()
    g.add("relu_dead", ops.ReLU(), ["matmul"])
    return g


class TestPrunedExecution:
    def test_prune_skips_non_ancestors(self):
        g = branchy_graph()
        result = Executor(g).run({"x": np.array([[2.0]])})
        assert "relu_dead" not in result.values
        assert result.output()[0, 0] == 4.0

    def test_prune_false_evaluates_whole_graph(self):
        g = branchy_graph()
        result = Executor(g).run({"x": np.array([[2.0]])}, prune=False)
        assert result.values["relu_dead"][0, 0] == 4.0

    def test_observers_never_see_pruned_nodes(self):
        g = branchy_graph()
        ex = Executor(g)
        seen = []
        ex.add_observer(lambda node, value: seen.append(node.name))
        ex.run({"x": np.array([[1.0]])})
        assert "relu_dead" not in seen


class TestPartialReExecution:
    def _cache(self, g, x_value=2.0):
        ex = Executor(g)
        return ex, ex.run({"x": np.array([[x_value]])}).values

    def test_dirty_value_propagates(self):
        g = tiny_graph()
        ex, cache = self._cache(g)
        result = ex.run_from(cache, dirty_values={"matmul": np.array([[-1.0]])})
        assert result.output()[0, 0] == 0.0
        assert result.recomputed == {"relu"}
        # The cache itself is left untouched.
        assert cache["relu"][0, 0] == 4.0

    def test_masked_change_terminates_early(self):
        g = tiny_graph()
        g.add("relu2", ops.ReLU(), ["relu"])
        g.outputs[:] = ["relu2"]
        ex, cache = self._cache(g, x_value=-3.0)  # relu output is 0
        # A corrupted matmul value that is still negative is squashed by the
        # first ReLU: nothing downstream of it may be re-evaluated.
        result = ex.run_from(cache, dirty_values={"matmul": np.array([[-9.0]])})
        assert result.recomputed == {"relu"}
        assert result.output()[0, 0] == 0.0

    def test_identical_override_recomputes_nothing(self):
        g = tiny_graph()
        ex, cache = self._cache(g)
        result = ex.run_from(cache, dirty_values={"matmul": cache["matmul"]})
        assert result.recomputed == set()
        assert result.output()[0, 0] == 4.0

    def test_dirty_node_reevaluated_with_hooks_and_policy(self):
        g = tiny_graph()
        ex, cache = self._cache(g)
        calls = []
        ex.add_output_hook(lambda node, out: (calls.append(node.name), out)[1])
        result = ex.run_from(cache, dirty=["matmul"])
        # Re-evaluating from clean cached inputs reproduces the cache bit for
        # bit, so the change dies at the seed itself.
        assert result.recomputed == {"matmul"}
        assert calls == ["matmul"]
        assert result.output()[0, 0] == 4.0

    def test_dirty_placeholder_requires_feed(self):
        g = tiny_graph()
        ex, cache = self._cache(g)
        with pytest.raises(GraphError, match="no value was fed"):
            ex.run_from(cache, dirty=["x"])
        result = ex.run_from(cache, dirty=["x"],
                             feed={"x": np.array([[5.0]])})
        assert result.output()[0, 0] == 10.0

    def test_missing_cache_entry_raises(self):
        g = tiny_graph()
        ex, cache = self._cache(g)
        partial_cache = {"x": cache["x"]}  # matmul's other input is missing
        with pytest.raises(GraphError, match="no cached value"):
            ex.run_from(partial_cache, dirty=["x"],
                        feed={"x": np.array([[1.0]])})

    def test_unknown_dirty_node_rejected(self):
        g = tiny_graph()
        ex, cache = self._cache(g)
        with pytest.raises(GraphError, match="unknown dirty node"):
            ex.run_from(cache, dirty=["nope"])

    def test_equals_full_run_bitwise(self):
        g = tiny_graph()
        g.add("relu2", ops.ReLU(), ["relu"])
        g.outputs[:] = ["relu2"]
        ex, cache = self._cache(g, x_value=1.7)
        corrupted = np.array([[123.456]])
        partial = ex.run_from(cache, dirty_values={"matmul": corrupted})
        # Reference: full run with a hook that swaps in the same value.
        ref = Executor(g)
        ref.add_output_hook(
            lambda node, out: corrupted if node.name == "matmul" else out)
        full = ref.run({"x": np.array([[1.7]])})
        assert partial.output().tobytes() == full.output().tobytes()


class TestGraphBuilder:
    def test_conv_layer_node_granularity(self):
        b = GraphBuilder("m", seed=0)
        x = b.input((8, 8, 3), "input")
        out = b.conv2d(x, 3, 4, 3, name="c1")
        g = b.graph
        assert "c1/kernel" in g and "c1/conv" in g
        assert "c1/bias_add" in g and "c1/relu" in g
        assert out == "c1/relu"

    def test_dense_without_activation(self):
        b = GraphBuilder("m", seed=0)
        x = b.input((6,), "input")
        out = b.dense(x, 6, 2, name="fc", activation=None)
        assert out == "fc/bias_add"

    def test_deterministic_weights_given_seed(self):
        def build(seed):
            b = GraphBuilder("m", seed=seed)
            x = b.input((6,), "input")
            b.dense(x, 6, 2, name="fc", activation=None)
            return b.graph.node("fc/weight").op.value

        np.testing.assert_array_equal(build(7), build(7))
        assert not np.array_equal(build(7), build(8))

    def test_forward_through_builder_graph(self, rng):
        b = GraphBuilder("m", seed=0)
        x = b.input((5, 5, 1), "input")
        h = b.conv2d(x, 1, 2, 3, name="c1")
        h = b.max_pool(h, 2, name="p1")
        h = b.flatten(h)
        h = b.dense(h, 2 * 2 * 2, 3, name="fc", activation=None)
        b.output(b.softmax(h))
        out = Executor(b.graph).run({"input": rng.normal(size=(2, 5, 5, 1))})
        assert out.output().shape == (2, 3)


@given(st.floats(min_value=-8.0, max_value=8.0),
       st.floats(min_value=0.1, max_value=4.0))
@settings(max_examples=40, deadline=None)
def test_duplicate_equivalence_property(x_value, weight):
    """Duplicated graphs always compute the same function as the original."""
    g = Graph("prop")
    g.add("x", ops.Placeholder("x"))
    g.add("w", ops.Variable(np.array([[weight]])))
    g.add("matmul", ops.MatMul(), ["x", "w"])
    g.add("tanh", ops.Tanh(), ["matmul"])
    g.mark_output("tanh")
    copy = g.duplicate()
    feed = {"x": np.array([[x_value]])}
    np.testing.assert_allclose(Executor(g).run(feed).output(),
                               Executor(copy).run(feed).output())
