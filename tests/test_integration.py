"""End-to-end integration tests reproducing the paper's headline claims at
tiny scale."""

import numpy as np
import pytest

from repro.analysis import evaluate_accuracy, protection_overhead, reduction_factor
from repro.core import Ranger
from repro.injection import (
    MultiBitFlip,
    SingleBitFlip,
    SteeringDeviation,
    compare_protection,
)
from repro.models import prepare_model
from repro.quantization import FIXED16, FIXED32, fixed16_policy, fixed32_policy


class TestHeadlineClaim:
    """RQ1: Ranger turns most critical faults into benign ones."""

    def test_lenet_sdc_reduction(self, lenet_prepared, lenet_protected):
        protected, _ = lenet_protected
        inputs, _ = lenet_prepared.correctly_predicted_inputs(6, seed=0)
        base, guarded = compare_protection(
            lenet_prepared.model, protected, inputs,
            fault_model=SingleBitFlip(FIXED32),
            dtype_policy=fixed32_policy(), trials=150, seed=0)
        original = base.sdc_rate("top1")
        with_ranger = guarded.sdc_rate("top1")
        assert original > 0.05, "baseline must exhibit SDCs for the test to be meaningful"
        assert with_ranger < original / 3.0
        assert reduction_factor(original, max(with_ranger, 1e-9)) > 3.0

    def test_comma_sdc_reduction(self, comma_prepared):
        ranger = Ranger(seed=0)
        sample, _ = comma_prepared.dataset.sample_train(60, seed=0)
        protected, _ = ranger.protect(comma_prepared.model,
                                      profile_inputs=sample)
        inputs, _ = comma_prepared.correctly_predicted_inputs(5, seed=0)
        criteria = [SteeringDeviation(threshold_degrees=60,
                                      angle_unit="degrees")]
        base, guarded = compare_protection(
            comma_prepared.model, protected, inputs,
            fault_model=SingleBitFlip(FIXED32), criteria=criteria,
            dtype_policy=fixed32_policy(), trials=120, seed=0)
        assert guarded.sdc_rate(criteria[0].name) < \
            max(base.sdc_rate(criteria[0].name), 0.05)


class TestAccuracyPreservation:
    """RQ2: Ranger does not degrade fault-free accuracy."""

    def test_lenet_accuracy_identical(self, lenet_prepared, lenet_protected):
        protected, _ = lenet_protected
        ds = lenet_prepared.dataset
        before = evaluate_accuracy(lenet_prepared.model, ds.x_val, ds.y_val)
        after = evaluate_accuracy(protected, ds.x_val, ds.y_val)
        assert after.top1 >= before.top1 - 1e-9

    def test_comma_accuracy_identical(self, comma_prepared):
        ranger = Ranger(seed=0)
        sample, _ = comma_prepared.dataset.sample_train(60, seed=0)
        protected, _ = ranger.protect(comma_prepared.model,
                                      profile_inputs=sample)
        ds = comma_prepared.dataset
        before = evaluate_accuracy(comma_prepared.model, ds.x_val, ds.y_val)
        after = evaluate_accuracy(protected, ds.x_val, ds.y_val)
        # Bounds profiled from a small training sample may clip a handful of
        # unseen validation activations (the rare case the paper discusses in
        # Section III-B); the effect on RMSE must stay negligible (<1%).
        assert after.rmse_degrees <= before.rmse_degrees * 1.01


class TestOverheads:
    """RQ3: negligible instrumentation, memory and FLOPs overheads."""

    def test_flops_overhead_below_two_percent(self, lenet_prepared,
                                              lenet_protected):
        protected, _ = lenet_protected
        overhead = protection_overhead(lenet_prepared.model, protected)
        assert overhead["overhead"] < 0.02

    def test_insertion_under_a_second(self, lenet_protected):
        _, info = lenet_protected
        assert info.insertion_seconds < 1.0

    def test_memory_overhead_tiny_vs_weights(self, lenet_prepared,
                                             lenet_protected):
        _, info = lenet_protected
        assert info.memory_overhead_values() < \
            0.01 * lenet_prepared.model.num_parameters


class TestReducedPrecisionAndMultiBit:
    """RQ4 and Section VI-B at tiny scale."""

    def test_fixed16_protection_still_effective(self, lenet_prepared):
        ranger = Ranger(seed=0)
        sample, _ = lenet_prepared.dataset.sample_train(60, seed=0)
        protected, _ = ranger.protect(lenet_prepared.model,
                                      profile_inputs=sample)
        inputs, _ = lenet_prepared.correctly_predicted_inputs(5, seed=0)
        base, guarded = compare_protection(
            lenet_prepared.model, protected, inputs,
            fault_model=SingleBitFlip(FIXED16),
            dtype_policy=fixed16_policy(), trials=120, seed=1)
        assert guarded.sdc_rate("top1") <= base.sdc_rate("top1")

    def test_multibit_faults_more_damaging_but_still_corrected(
            self, lenet_prepared, lenet_protected):
        protected, _ = lenet_protected
        inputs, _ = lenet_prepared.correctly_predicted_inputs(5, seed=0)
        single_base, _ = compare_protection(
            lenet_prepared.model, protected, inputs,
            fault_model=SingleBitFlip(FIXED32), trials=100, seed=2)
        multi_base, multi_guarded = compare_protection(
            lenet_prepared.model, protected, inputs,
            fault_model=MultiBitFlip(4, FIXED32), trials=100, seed=2)
        # More corrupted values -> at least as many SDCs on the baseline.
        assert multi_base.sdc_rate("top1") >= single_base.sdc_rate("top1") - 0.05
        # Ranger still cuts the rate substantially.
        assert multi_guarded.sdc_rate("top1") < multi_base.sdc_rate("top1")


class TestTanhModelNeedsNoProfiling:
    def test_tanh_lenet_protected_from_inherent_bounds(self):
        prepared = prepare_model("lenet", epochs=2, seed=21,
                                 activation="tanh", use_cache=False)
        ranger = Ranger(seed=0)
        sample, _ = prepared.dataset.sample_train(20, seed=0)
        protected, info = ranger.protect(prepared.model,
                                         profile_inputs=sample)
        # All bounds come from the Tanh range, not from observations.
        assert info.profile.observations == {}
        assert all(bound == (-1.0, 1.0) for bound in info.bounds.bounds.values())
        assert info.num_protected_layers > 0
