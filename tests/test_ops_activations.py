"""Unit tests for activation operators."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import ops


class TestReLU:
    def test_positive_values_pass_through(self):
        x = np.array([0.5, 2.0, 100.0])
        np.testing.assert_array_equal(ops.ReLU().forward(x), x)

    def test_negative_values_zeroed(self):
        x = np.array([-0.5, -2.0, 0.0])
        np.testing.assert_array_equal(ops.ReLU().forward(x),
                                      np.array([0.0, 0.0, 0.0]))

    def test_backward_masks_negative_inputs(self):
        x = np.array([-1.0, 1.0, 2.0])
        grad = np.ones_like(x)
        (dx,) = ops.ReLU().backward(grad, [x], ops.ReLU().forward(x))
        np.testing.assert_array_equal(dx, np.array([0.0, 1.0, 1.0]))

    def test_is_unbounded(self):
        assert ops.ReLU.inherent_bounds is None

    def test_category_is_activation(self):
        assert ops.ReLU().category == "activation"


class TestTanhSigmoid:
    def test_tanh_bounds(self):
        assert ops.Tanh.inherent_bounds == (-1.0, 1.0)
        out = ops.Tanh().forward(np.array([-100.0, 0.0, 100.0]))
        assert np.all(out >= -1.0) and np.all(out <= 1.0)

    def test_sigmoid_bounds(self):
        assert ops.Sigmoid.inherent_bounds == (0.0, 1.0)
        out = ops.Sigmoid().forward(np.array([-100.0, 0.0, 100.0]))
        assert np.all(out >= 0.0) and np.all(out <= 1.0)

    def test_tanh_backward_matches_derivative(self):
        x = np.linspace(-2, 2, 9)
        op = ops.Tanh()
        out = op.forward(x)
        (dx,) = op.backward(np.ones_like(x), [x], out)
        np.testing.assert_allclose(dx, 1.0 - np.tanh(x) ** 2, atol=1e-12)

    def test_sigmoid_midpoint(self):
        assert ops.Sigmoid().forward(np.array([0.0]))[0] == pytest.approx(0.5)


class TestELU:
    def test_positive_identity(self):
        x = np.array([0.1, 1.0, 5.0])
        np.testing.assert_array_equal(ops.ELU().forward(x), x)

    def test_negative_bounded_below(self):
        out = ops.ELU(alpha=1.0).forward(np.array([-100.0]))
        assert out[0] == pytest.approx(-1.0, abs=1e-6)

    def test_backward_positive_side(self):
        x = np.array([2.0])
        op = ops.ELU()
        (dx,) = op.backward(np.array([1.0]), [x], op.forward(x))
        assert dx[0] == pytest.approx(1.0)

    def test_alpha_in_config(self):
        assert ops.ELU(alpha=0.5).config() == {"alpha": 0.5}


class TestAtan:
    def test_bounded_to_half_pi(self):
        out = ops.Atan().forward(np.array([-1e9, 1e9]))
        assert out[0] == pytest.approx(-np.pi / 2, abs=1e-6)
        assert out[1] == pytest.approx(np.pi / 2, abs=1e-6)

    def test_scaled_atan_doubles_range(self):
        op = ops.ScaledAtan(scale=2.0)
        out = op.forward(np.array([1e9]))
        assert out[0] == pytest.approx(np.pi, abs=1e-5)
        assert op.inherent_bounds == (-np.pi, np.pi)

    def test_small_input_sensitivity(self):
        # The paper's observation: near the origin, atan is steep relative to
        # its bounded output range, so small input deviations translate into
        # a large fraction of the output range.
        op = ops.ScaledAtan(scale=2.0)
        base = op.forward(np.array([0.0]))[0]
        deviated = op.forward(np.array([5.0]))[0]
        assert abs(deviated - base) > 0.8 * np.pi / 2


class TestSoftmax:
    def test_rows_sum_to_one(self, rng):
        x = rng.normal(size=(4, 7))
        out = ops.Softmax().forward(x)
        np.testing.assert_allclose(out.sum(axis=1), np.ones(4), atol=1e-12)

    def test_shift_invariance(self, rng):
        x = rng.normal(size=(2, 5))
        sm = ops.Softmax()
        np.testing.assert_allclose(sm.forward(x), sm.forward(x + 100.0),
                                   atol=1e-12)

    def test_handles_large_values_without_overflow(self):
        out = ops.Softmax().forward(np.array([[1e30, 0.0, -1e30]]))
        assert np.all(np.isfinite(out))
        assert out[0, 0] == pytest.approx(1.0)

    def test_not_an_activation_category(self):
        # Ranger must not treat the output softmax as a protectable activation.
        assert ops.Softmax().category == "output"


class TestLeakyReLU:
    def test_negative_slope(self):
        out = ops.LeakyReLU(alpha=0.1).forward(np.array([-10.0]))
        assert out[0] == pytest.approx(-1.0)

    def test_backward(self):
        op = ops.LeakyReLU(alpha=0.2)
        x = np.array([-1.0, 3.0])
        (dx,) = op.backward(np.ones(2), [x], op.forward(x))
        np.testing.assert_allclose(dx, [0.2, 1.0])


class TestRegistry:
    @pytest.mark.parametrize("name", ["relu", "tanh", "sigmoid", "elu",
                                      "leaky_relu", "atan"])
    def test_make_activation_known(self, name):
        op = ops.make_activation(name)
        assert op.category == "activation"

    def test_make_activation_unknown_raises(self):
        with pytest.raises(ValueError, match="unknown activation"):
            ops.make_activation("swishh")

    def test_kwargs_forwarded(self):
        op = ops.make_activation("elu", alpha=0.3)
        assert op.alpha == 0.3


@given(st.lists(st.floats(min_value=-100, max_value=100), min_size=1,
                max_size=32))
@settings(max_examples=50, deadline=None)
def test_monotonicity_of_relu(values):
    """ReLU is monotone: larger inputs never produce smaller outputs.

    This is the property (from BinFI / the paper's Section III-B) on which
    the whole range-restriction argument rests.
    """
    x = np.array(sorted(values))
    out = ops.ReLU().forward(x)
    assert np.all(np.diff(out) >= 0.0)


@given(st.lists(st.floats(min_value=-50, max_value=50), min_size=1,
                max_size=32))
@settings(max_examples=50, deadline=None)
def test_monotonicity_of_bounded_activations(values):
    """Tanh / Sigmoid / Atan are monotone as well."""
    x = np.array(sorted(values))
    for op in (np.tanh, lambda v: 1 / (1 + np.exp(-v)), np.arctan):
        out = op(x)
        assert np.all(np.diff(out) >= -1e-12)
