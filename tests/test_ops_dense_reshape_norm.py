"""Unit tests for dense / arithmetic / reshape / normalization operators."""

import numpy as np
import pytest

from repro import ops
from tests.test_ops_conv_pool import numerical_gradient


class TestMatMulBias:
    def test_matmul_result(self, rng):
        x = rng.normal(size=(4, 3))
        w = rng.normal(size=(3, 5))
        np.testing.assert_allclose(ops.MatMul().forward(x, w), x @ w)

    def test_matmul_shape_mismatch(self, rng):
        with pytest.raises(ops.OperatorError):
            ops.MatMul().forward(rng.normal(size=(4, 3)),
                                 rng.normal(size=(4, 5)))

    def test_matmul_gradients(self, rng):
        x = rng.normal(size=(3, 4))
        w = rng.normal(size=(4, 2))
        op = ops.MatMul()
        out = op.forward(x, w)
        upstream = rng.normal(size=out.shape)
        grad_x, grad_w = op.backward(upstream, [x, w], out)
        num_x = numerical_gradient(
            lambda v: float(np.sum(op.forward(v, w) * upstream)), x.copy())
        num_w = numerical_gradient(
            lambda v: float(np.sum(op.forward(x, v) * upstream)), w.copy())
        np.testing.assert_allclose(grad_x, num_x, atol=1e-5)
        np.testing.assert_allclose(grad_w, num_w, atol=1e-5)

    def test_bias_add_broadcasts_over_batch(self, rng):
        x = rng.normal(size=(4, 3))
        b = rng.normal(size=(3,))
        np.testing.assert_allclose(ops.BiasAdd().forward(x, b), x + b)

    def test_bias_add_gradient_sums_over_batch(self, rng):
        x = rng.normal(size=(4, 3))
        b = rng.normal(size=(3,))
        grad = rng.normal(size=(4, 3))
        _, grad_b = ops.BiasAdd().backward(grad, [x, b], x + b)
        np.testing.assert_allclose(grad_b, grad.sum(axis=0))

    def test_bias_shape_mismatch(self, rng):
        with pytest.raises(ops.OperatorError):
            ops.BiasAdd().forward(rng.normal(size=(2, 3)),
                                  rng.normal(size=(4,)))


class TestArithmetic:
    def test_add(self, rng):
        a, b = rng.normal(size=(2, 3)), rng.normal(size=(2, 3))
        np.testing.assert_allclose(ops.Add().forward(a, b), a + b)

    def test_add_gradients_unbroadcast(self, rng):
        a = rng.normal(size=(2, 3))
        b = rng.normal(size=(3,))
        grad = rng.normal(size=(2, 3))
        grad_a, grad_b = ops.Add().backward(grad, [a, b], a + b)
        assert grad_a.shape == a.shape
        assert grad_b.shape == b.shape
        np.testing.assert_allclose(grad_b, grad.sum(axis=0))

    def test_multiply_gradient(self, rng):
        a, b = rng.normal(size=(3,)), rng.normal(size=(3,))
        grad = np.ones(3)
        grad_a, grad_b = ops.Multiply().backward(grad, [a, b], a * b)
        np.testing.assert_allclose(grad_a, b)
        np.testing.assert_allclose(grad_b, a)

    def test_scale(self):
        out = ops.Scale(2.5).forward(np.array([1.0, 2.0]))
        np.testing.assert_allclose(out, [2.5, 5.0])


class TestClipMinMax:
    def test_clip_truncates(self):
        op = ops.ClipByValue(0.0, 10.0)
        out = op.forward(np.array([-5.0, 5.0, 50.0]))
        np.testing.assert_allclose(out, [0.0, 5.0, 10.0])

    def test_clip_rejects_inverted_bounds(self):
        with pytest.raises(ValueError):
            ops.ClipByValue(1.0, 0.0)

    def test_clip_gradient_zero_outside(self):
        op = ops.ClipByValue(0.0, 1.0)
        x = np.array([-1.0, 0.5, 2.0])
        (dx,) = op.backward(np.ones(3), [x], op.forward(x))
        np.testing.assert_allclose(dx, [0.0, 1.0, 0.0])

    def test_minimum_maximum_are_protection_category(self):
        assert ops.Minimum().category == "protection"
        assert ops.Maximum().category == "protection"
        assert not ops.Minimum().injectable

    def test_minimum_maximum_forward(self):
        x = np.array([1.0, 5.0])
        bound = np.array([3.0])
        np.testing.assert_allclose(ops.Minimum().forward(x, bound), [1.0, 3.0])
        np.testing.assert_allclose(ops.Maximum().forward(x, bound), [3.0, 5.0])

    def test_clip_flops_two_per_element(self):
        assert ops.ClipByValue(0, 1).flops([(2, 8)], (2, 8)) == 32


class TestReshapeConcat:
    def test_flatten(self, rng):
        x = rng.normal(size=(3, 4, 5, 2))
        assert ops.Flatten().forward(x).shape == (3, 40)

    def test_flatten_backward_restores_shape(self, rng):
        x = rng.normal(size=(2, 3, 3, 1))
        op = ops.Flatten()
        out = op.forward(x)
        (dx,) = op.backward(np.ones_like(out), [x], out)
        assert dx.shape == x.shape

    def test_reshape_target(self, rng):
        x = rng.normal(size=(2, 12))
        out = ops.Reshape((3, 4)).forward(x)
        assert out.shape == (2, 3, 4)

    def test_concat_channel_axis(self, rng):
        a = rng.normal(size=(1, 4, 4, 2))
        b = rng.normal(size=(1, 4, 4, 3))
        out = ops.Concatenate(axis=-1).forward(a, b)
        assert out.shape == (1, 4, 4, 5)

    def test_concat_backward_splits(self, rng):
        a = rng.normal(size=(1, 2, 2, 2))
        b = rng.normal(size=(1, 2, 2, 3))
        op = ops.Concatenate(axis=-1)
        out = op.forward(a, b)
        grads = op.backward(out, [a, b], out)
        np.testing.assert_allclose(grads[0], a)
        np.testing.assert_allclose(grads[1], b)

    def test_concat_requires_inputs(self):
        with pytest.raises(ops.OperatorError):
            ops.Concatenate().forward()

    def test_pad2d(self, rng):
        x = rng.normal(size=(1, 3, 3, 1))
        out = ops.Pad2D((1, 1), (2, 2)).forward(x)
        assert out.shape == (1, 5, 7, 1)
        assert out[0, 0, 0, 0] == 0.0

    def test_reshape_and_concat_categories(self):
        # Categories drive Ranger's bound-extension logic.
        assert ops.Flatten().category == "reshape"
        assert ops.Reshape((2,)).category == "reshape"
        assert ops.Concatenate().category == "concat"


class TestDropout:
    def test_identity_at_inference(self, rng):
        x = rng.normal(size=(4, 10))
        op = ops.Dropout(rate=0.5, seed=0)
        op.training = False
        np.testing.assert_array_equal(op.forward(x), x)

    def test_drops_values_in_training(self, rng):
        x = np.ones((1, 1000))
        op = ops.Dropout(rate=0.5, seed=0)
        op.training = True
        out = op.forward(x)
        dropped = np.sum(out == 0.0)
        assert 350 < dropped < 650  # roughly half

    def test_invalid_rate(self):
        with pytest.raises(ValueError):
            ops.Dropout(rate=1.0)


class TestBatchNorm:
    def test_inference_uses_moving_statistics(self, rng):
        op = ops.BatchNorm()
        x = rng.normal(size=(8, 4)) * 3.0 + 1.0
        gamma, beta = np.ones(4), np.zeros(4)
        op.training = True
        op.forward(x, gamma, beta)
        op.training = False
        out = op.forward(x, gamma, beta)
        assert out.shape == x.shape

    def test_training_normalizes_batch(self, rng):
        op = ops.BatchNorm()
        op.training = True
        x = rng.normal(size=(64, 3)) * 5.0 + 2.0
        out = op.forward(x, np.ones(3), np.zeros(3))
        np.testing.assert_allclose(out.mean(axis=0), 0.0, atol=1e-6)
        np.testing.assert_allclose(out.std(axis=0), 1.0, atol=1e-2)

    def test_parameter_shape_mismatch(self, rng):
        with pytest.raises(ops.OperatorError):
            ops.BatchNorm().forward(rng.normal(size=(2, 3)), np.ones(4),
                                    np.zeros(4))

    def test_gamma_beta_gradients(self, rng):
        op = ops.BatchNorm()
        op.training = True
        x = rng.normal(size=(16, 3))
        gamma, beta = rng.normal(size=3), rng.normal(size=3)
        out = op.forward(x, gamma, beta)
        grad = rng.normal(size=out.shape)
        _, grad_gamma, grad_beta = op.backward(grad, [x, gamma, beta], out)
        assert grad_gamma.shape == (3,)
        np.testing.assert_allclose(grad_beta, grad.sum(axis=0))


class TestLocalResponseNorm:
    def test_preserves_shape(self, rng):
        x = rng.normal(size=(2, 4, 4, 8))
        out = ops.LocalResponseNorm().forward(x)
        assert out.shape == x.shape

    def test_shrinks_large_activations(self):
        x = np.full((1, 1, 1, 4), 100.0)
        out = ops.LocalResponseNorm(alpha=1e-2).forward(x)
        assert np.all(np.abs(out) < 100.0)

    def test_zero_input_stays_zero(self):
        x = np.zeros((1, 2, 2, 3))
        np.testing.assert_array_equal(ops.LocalResponseNorm().forward(x), x)


class TestVariablesConstants:
    def test_variable_accumulates_gradients(self):
        var = ops.Variable(np.zeros(3))
        var.accumulate_grad(np.ones(3))
        var.accumulate_grad(np.ones(3))
        np.testing.assert_allclose(var.grad, 2 * np.ones(3))
        var.zero_grad()
        assert var.grad is None

    def test_constant_returns_value(self):
        c = ops.Constant(np.array([1.0, 2.0]))
        np.testing.assert_array_equal(c.forward(), [1.0, 2.0])

    def test_placeholder_cannot_execute(self):
        with pytest.raises(ops.OperatorError):
            ops.Placeholder("x").forward()

    def test_not_injectable(self):
        assert not ops.Variable(np.zeros(1)).injectable
        assert not ops.Constant(np.zeros(1)).injectable
        assert not ops.Placeholder("x").injectable
