#!/usr/bin/env python
"""Restriction-bound tuning study (the paper's Section VI-A).

Sweeps the restriction-bound percentile for the degrees-output Dave model and
prints the accuracy/resilience trade-off: tighter bounds buy extra SDC
reduction at a small accuracy cost.  Also demonstrates the out-of-bound
policy alternatives of Section VI-C on a classifier.

Run with:  python examples/bound_tuning_study.py
"""

from __future__ import annotations

import numpy as np

from repro.analysis import evaluate_accuracy, render_table
from repro.core import Ranger
from repro.injection import SingleBitFlip, SteeringDeviation, compare_protection
from repro.models import prepare_model
from repro.quantization import FIXED32, fixed32_policy


def percentile_sweep() -> None:
    print("=== Bound-percentile sweep on Dave (degrees output) ===")
    prepared = prepare_model("dave", epochs=12, learning_rate=3e-3, seed=0,
                             output_mode="degrees")
    sample, _ = prepared.dataset.sample_train(100, seed=0)
    ranger = Ranger()
    profile = ranger.profile(prepared.model, sample)
    inputs, _ = prepared.correctly_predicted_inputs(6, seed=1)
    criteria = [SteeringDeviation(threshold_degrees=t, angle_unit="degrees")
                for t in (15, 30, 60, 120)]

    rows = []
    for percentile in (100.0, 99.9, 99.0, 98.0):
        bounds = profile.select_bounds(percentile)
        protected, _ = ranger.transform(prepared.model, bounds)
        base, guarded = compare_protection(
            prepared.model, protected, inputs,
            fault_model=SingleBitFlip(FIXED32), criteria=criteria,
            dtype_policy=fixed32_policy(), trials=200, seed=2)
        accuracy = evaluate_accuracy(protected, prepared.dataset.x_val,
                                     prepared.dataset.y_val)
        avg_sdc = np.mean([guarded.sdc_rate_percent(c.name) for c in criteria])
        rows.append([f"{percentile:g}%", avg_sdc, accuracy.rmse_degrees,
                     accuracy.avg_deviation_degrees])
    baseline = evaluate_accuracy(prepared.model, prepared.dataset.x_val,
                                 prepared.dataset.y_val)
    rows.insert(0, ["unprotected",
                    np.mean([base.sdc_rate_percent(c.name) for c in criteria]),
                    baseline.rmse_degrees, baseline.avg_deviation_degrees])
    print(render_table(["bound", "avg SDC %", "RMSE (deg)", "avg dev (deg)"],
                       rows, precision=2))


def policy_alternatives() -> None:
    print("\n=== Out-of-bound policy alternatives on LeNet (Section VI-C) ===")
    prepared = prepare_model("lenet", epochs=6, seed=0)
    sample, _ = prepared.dataset.sample_train(80, seed=0)
    inputs, _ = prepared.correctly_predicted_inputs(6, seed=1)
    rows = []
    for policy in ("clip", "zero", "random"):
        ranger = Ranger(policy=policy)
        protected, _ = ranger.protect(prepared.model, profile_inputs=sample)
        base, guarded = compare_protection(
            prepared.model, protected, inputs,
            fault_model=SingleBitFlip(FIXED32), dtype_policy=fixed32_policy(),
            trials=200, seed=3)
        accuracy = evaluate_accuracy(protected, prepared.dataset.x_val,
                                     prepared.dataset.y_val)
        rows.append([policy, base.sdc_rate_percent("top1"),
                     guarded.sdc_rate_percent("top1"), accuracy.top1])
    print(render_table(["policy", "original SDC %", "protected SDC %",
                        "top-1 accuracy"], rows, precision=3))


def main() -> None:
    percentile_sweep()
    policy_alternatives()


if __name__ == "__main__":
    main()
