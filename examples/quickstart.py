#!/usr/bin/env python
"""Quickstart: protect a DNN with Ranger and measure the SDC reduction.

This walks the full pipeline of the paper on a small LeNet classifier:

1. build and train the model on the synthetic digits dataset,
2. profile its activation ranges on a sample of the training data,
3. apply Ranger (Algorithm 1) to get a protected copy of the graph,
4. run a paired fault-injection campaign on both models, and
5. report SDC rates, accuracy, and overheads.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro.analysis import evaluate_accuracy, protection_overhead, reduction_factor
from repro.core import Ranger
from repro.injection import SingleBitFlip, compare_protection
from repro.models import prepare_model
from repro.quantization import FIXED32, fixed32_policy


def main() -> None:
    print("=== 1. Build and train LeNet on the synthetic digits dataset ===")
    prepared = prepare_model("lenet", epochs=6, seed=0)
    model, dataset = prepared.model, prepared.dataset
    accuracy = evaluate_accuracy(model, dataset.x_val, dataset.y_val)
    print(f"validation top-1 accuracy: {accuracy.top1:.2%}")

    print("\n=== 2-3. Profile activation ranges and apply Ranger ===")
    ranger = Ranger(percentile=100.0, policy="clip")
    profile_sample, _ = dataset.sample_train(100, seed=0)
    protected, info = ranger.protect(model, profile_inputs=profile_sample)
    print(f"protected {info.num_protected_layers} operators "
          f"in {info.insertion_seconds * 1000:.1f} ms")
    for layer, (low, high) in list(info.bounds.items())[:4]:
        print(f"  bound[{layer}] = ({low:.2f}, {high:.2f})")

    print("\n=== 4. Paired fault-injection campaign (single bit flips) ===")
    inputs, _ = prepared.correctly_predicted_inputs(8, seed=1)
    base, guarded = compare_protection(
        model, protected, inputs, fault_model=SingleBitFlip(FIXED32),
        dtype_policy=fixed32_policy(), trials=300, seed=2)
    original_rate = base.sdc_rate_percent("top1")
    protected_rate = guarded.sdc_rate_percent("top1")
    print(base.summary())
    print(guarded.summary())
    print(f"SDC reduction: {original_rate:.2f}% -> {protected_rate:.2f}% "
          f"({reduction_factor(original_rate, max(protected_rate, 1e-6)):.1f}x)")

    print("\n=== 5. Accuracy and overhead of the protected model ===")
    protected_accuracy = evaluate_accuracy(protected, dataset.x_val,
                                           dataset.y_val)
    print(f"top-1 accuracy: {accuracy.top1:.2%} (original) vs "
          f"{protected_accuracy.top1:.2%} (with Ranger)")
    overhead = protection_overhead(model, protected)
    print(f"FLOPs overhead: {100 * overhead['overhead']:.3f}%  "
          f"({overhead['flops_without'] / 1e6:.2f} MFLOPs -> "
          f"{overhead['flops_with'] / 1e6:.2f} MFLOPs)")


if __name__ == "__main__":
    main()
