#!/usr/bin/env python
"""Run the paper's entire evaluation (every reproduced table and figure).

The default scale is the committed benchmark configuration; pass ``--smoke``
for a seconds-scale sanity run or ``--trials N`` to approach the paper's
campaign sizes.  The report is printed to stdout and optionally written as
markdown.

Run with:  python examples/full_evaluation.py --smoke
"""

from __future__ import annotations

import argparse

from repro.experiments import (
    EXPERIMENT_REGISTRY,
    ExperimentScale,
    results_to_markdown,
    run_all_experiments,
)


def parse_args() -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="run a minutes-scale sanity configuration")
    parser.add_argument("--trials", type=int, default=None,
                        help="fault-injection trials per campaign")
    parser.add_argument("--only", nargs="*", default=None,
                        choices=sorted(EXPERIMENT_REGISTRY),
                        help="run only the named experiments")
    parser.add_argument("--output", default=None,
                        help="write a markdown report to this path")
    return parser.parse_args()


def main() -> None:
    args = parse_args()
    scale = ExperimentScale.smoke() if args.smoke else ExperimentScale()
    if args.trials is not None:
        scale.trials = args.trials
    results = run_all_experiments(scale, only=args.only, verbose=True)
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(results_to_markdown(results))
        print(f"wrote {args.output}")


if __name__ == "__main__":
    main()
