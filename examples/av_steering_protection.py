#!/usr/bin/env python
"""AV scenario: protect the Comma.ai and Dave steering models.

Reproduces the paper's motivating example (Fig. 1): a transient fault during
steering-angle inference can swing the predicted angle by hundreds of
degrees; with Ranger the corrupted activation is truncated and the prediction
stays within a safe deviation of the fault-free output.

The script also reproduces the radians-vs-degrees observation of Section
VI-A: the original Dave model (atan output head, radians) benefits less from
Ranger than the retrained degrees-output variant.

Run with:  python examples/av_steering_protection.py
"""

from __future__ import annotations

import numpy as np

from repro.core import Ranger
from repro.injection import (
    FaultInjector,
    SingleBitFlip,
    SteeringDeviation,
    compare_protection,
)
from repro.models import prepare_model
from repro.quantization import FIXED32, fixed32_policy


def demonstrate_single_fault(prepared, protected) -> None:
    """The Fig. 1 moment: one fault, with and without Ranger."""
    model = prepared.model
    inputs, _ = prepared.correctly_predicted_inputs(1, seed=7)
    golden = float(model.predict(inputs)[0, 0])

    injector = FaultInjector(model, SingleBitFlip(FIXED32), seed=11)
    injector.profile_state_space(inputs)
    # Search for a plan whose fault visibly corrupts the output.
    worst_plan, worst_output = None, golden
    for _ in range(200):
        plan = injector.sample_plan()
        faulty, _ = injector.inject(model.executor(), inputs, plan)
        if abs(float(faulty[0, 0]) - golden) > abs(worst_output - golden):
            worst_plan, worst_output = plan, float(faulty[0, 0])
    corrected, _ = injector.inject(protected.executor(), inputs, worst_plan)
    print(f"  fault-free steering angle : {golden:10.2f} deg")
    print(f"  with fault (unprotected)  : {worst_output:10.2f} deg")
    print(f"  with fault + Ranger       : {float(corrected[0, 0]):10.2f} deg")


def evaluate_model(name: str, **overrides) -> None:
    print(f"\n=== {name} {overrides or ''} ===")
    prepared = prepare_model(name, epochs=10, learning_rate=3e-3, seed=0,
                             **overrides)
    ranger = Ranger()
    sample, _ = prepared.dataset.sample_train(100, seed=0)
    protected, _ = ranger.protect(prepared.model, profile_inputs=sample)

    demonstrate_single_fault(prepared, protected)

    inputs, _ = prepared.correctly_predicted_inputs(6, seed=1)
    criteria = [SteeringDeviation(threshold_degrees=t,
                                  angle_unit=prepared.model.angle_unit)
                for t in (15, 30, 60, 120)]
    base, guarded = compare_protection(
        prepared.model, protected, inputs, fault_model=SingleBitFlip(FIXED32),
        criteria=criteria, dtype_policy=fixed32_policy(), trials=200, seed=3)
    print("  threshold   original   with Ranger")
    for criterion in criteria:
        print(f"  {criterion.threshold_degrees:7.0f}deg "
              f"{base.sdc_rate_percent(criterion.name):9.2f}% "
              f"{guarded.sdc_rate_percent(criterion.name):12.2f}%")


def main() -> None:
    evaluate_model("comma")
    evaluate_model("dave", output_mode="radians")
    evaluate_model("dave", output_mode="degrees")


if __name__ == "__main__":
    main()
