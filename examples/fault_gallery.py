#!/usr/bin/env python
"""Fault gallery (the paper's Fig. 5): what SDCs look like per task.

For a classifier and a steering model, the script injects single bit flips
until it finds faults that corrupt the output, then prints a small gallery of
before/after predictions — misclassified digits for the classifier, deviated
steering angles for the AV model — and shows that the Ranger-protected graph
produces the correct output for the very same faults.

Run with:  python examples/fault_gallery.py
"""

from __future__ import annotations

import numpy as np

from repro.core import Ranger
from repro.injection import FaultInjector, SingleBitFlip, TopKMisclassification
from repro.models import prepare_model
from repro.quantization import FIXED32


def classifier_gallery(entries: int = 3) -> None:
    print("=== Classifier SDCs (LeNet on synthetic digits) ===")
    prepared = prepare_model("lenet", epochs=6, seed=0)
    model = prepared.model
    ranger = Ranger()
    sample, _ = prepared.dataset.sample_train(80, seed=0)
    protected, _ = ranger.protect(model, profile_inputs=sample)

    inputs, labels = prepared.correctly_predicted_inputs(entries, seed=2)
    injector = FaultInjector(model, SingleBitFlip(FIXED32), seed=5)
    injector.profile_state_space(inputs[:1])
    criterion = TopKMisclassification(k=1)

    for i in range(entries):
        x = inputs[i:i + 1]
        golden = model.predict(x)
        # Search for a fault that flips the prediction.
        for _ in range(500):
            plan = injector.sample_plan()
            faulty, specs = injector.inject(model.executor(), x, plan)
            if criterion.is_sdc(golden, faulty):
                corrected, _ = injector.inject(protected.executor(), x, plan)
                spec = specs[0]
                print(f"  input #{i}: true label {labels[i]}")
                print(f"    fault: bit {spec.bit} of {spec.node_name} "
                      f"({spec.original:.2f} -> {spec.corrupted:.2e})")
                print(f"    prediction  fault-free: {int(golden.argmax())}   "
                      f"faulty: {int(faulty.argmax())}   "
                      f"faulty+Ranger: {int(corrected.argmax())}")
                break
        else:
            print(f"  input #{i}: no SDC found in 500 trials "
                  f"(model is already resilient for this input)")


def steering_gallery(entries: int = 3) -> None:
    print("\n=== Steering-model SDCs (Comma.ai on synthetic driving data) ===")
    prepared = prepare_model("comma", epochs=8, seed=0)
    model = prepared.model
    ranger = Ranger()
    sample, _ = prepared.dataset.sample_train(80, seed=0)
    protected, _ = ranger.protect(model, profile_inputs=sample)

    inputs, targets = prepared.correctly_predicted_inputs(entries, seed=2)
    injector = FaultInjector(model, SingleBitFlip(FIXED32), seed=6)
    injector.profile_state_space(inputs[:1])

    for i in range(entries):
        x = inputs[i:i + 1]
        golden = float(model.predict(x)[0, 0])
        worst = (None, golden)
        for _ in range(300):
            plan = injector.sample_plan()
            faulty, _ = injector.inject(model.executor(), x, plan)
            value = float(faulty[0, 0])
            if abs(value - golden) > abs(worst[1] - golden):
                worst = (plan, value)
        corrected = golden
        if worst[0] is not None:
            corrected = float(injector.inject(protected.executor(), x,
                                              worst[0])[0][0, 0])
        print(f"  frame #{i}: label {float(targets[i]):8.2f} deg | "
              f"fault-free {golden:8.2f} | worst fault {worst[1]:10.2f} | "
              f"fault + Ranger {corrected:8.2f}")


def main() -> None:
    classifier_gallery()
    steering_gallery()


if __name__ == "__main__":
    main()
